#include "nn/arch_specs.hpp"

#include <sstream>

namespace comdml::nn {

double ArchitectureSpec::total_flops() const {
  double total = 0.0;
  for (const auto& u : units) total += u.flops_forward + u.flops_backward;
  return total;
}

int64_t ArchitectureSpec::total_param_bytes() const {
  int64_t total = 0;
  for (const auto& u : units) total += u.param_bytes;
  return total;
}

double ArchitectureSpec::prefix_flops(size_t cut) const {
  COMDML_CHECK(cut <= units.size());
  double total = 0.0;
  for (size_t i = 0; i < cut; ++i)
    total += units[i].flops_forward + units[i].flops_backward;
  return total;
}

int64_t ArchitectureSpec::suffix_param_bytes(size_t cut) const {
  COMDML_CHECK(cut <= units.size());
  int64_t total = 0;
  for (size_t i = cut; i < units.size(); ++i) total += units[i].param_bytes;
  return total;
}

int64_t ArchitectureSpec::cut_activation_bytes(size_t cut) const {
  COMDML_REQUIRE(cut >= 1 && cut < units.size(),
                 "cut " << cut << " not an interior boundary of "
                        << units.size() << " units");
  const UnitSpec& u = units[cut - 1];
  // +8: per-sample label (int64) shipped with the activation.
  return u.act_bytes + u.cut_extra_bytes + 8;
}

namespace {

constexpr int64_t kF32 = static_cast<int64_t>(sizeof(float));

/// Adds one conv(+BN+ReLU) unit to the spec and returns its output bytes.
UnitSpec conv_unit(const std::string& name, int64_t cin, int64_t cout,
                   int64_t k, int64_t hout, int64_t wout, int64_t extra_skip) {
  UnitSpec u;
  u.name = name;
  const double conv_fwd =
      2.0 * double(k * k) * double(cin) * double(cout) * double(hout * wout);
  const double bn_relu_fwd = 5.0 * double(cout * hout * wout);
  u.flops_forward = conv_fwd + bn_relu_fwd;
  u.flops_backward = 2.0 * conv_fwd + 2.0 * bn_relu_fwd;
  u.param_bytes = (cout * cin * k * k + 4 * cout) * kF32;  // conv + BN(γβ,μ,σ²)
  u.act_bytes = cout * hout * wout * kF32;
  u.cut_extra_bytes = extra_skip;
  return u;
}

}  // namespace

ArchitectureSpec resnet_cifar_spec(int depth, int64_t classes,
                                   int64_t image_hw) {
  COMDML_REQUIRE(depth >= 8 && (depth - 2) % 6 == 0,
                 "CIFAR ResNet depth must be 6n+2, got " << depth);
  const int64_t n = (depth - 2) / 6;  // blocks per stage
  ArchitectureSpec spec;
  {
    std::ostringstream os;
    os << "resnet" << depth;
    spec.name = os.str();
  }
  spec.classes = classes;

  // Stem: conv3x3 3->16 at full resolution.
  int64_t hw = image_hw;
  spec.units.push_back(conv_unit("stem", 3, 16, 3, hw, hw, 0));

  int64_t in_ch = 16;
  for (int stage = 0; stage < 3; ++stage) {
    const int64_t out_ch = 16 << stage;
    for (int64_t b = 0; b < n; ++b) {
      const bool downsample = (stage > 0 && b == 0);
      const int64_t hw_out = downsample ? hw / 2 : hw;
      const int64_t block_in_bytes = in_ch * hw * hw * kF32;
      std::ostringstream base;
      base << "s" << stage + 1 << "b" << b + 1;
      // conv1: cutting after it leaves the skip input live -> extra bytes.
      UnitSpec c1 = conv_unit(base.str() + ".conv1", in_ch, out_ch, 3, hw_out,
                              hw_out, block_in_bytes);
      // conv2 closes the block (skip is consumed by the residual add).
      UnitSpec c2 = conv_unit(base.str() + ".conv2", out_ch, out_ch, 3,
                              hw_out, hw_out, 0);
      if (downsample) {
        // Fold the 1x1 projection shortcut into the block-closing unit.
        const double proj_fwd =
            2.0 * double(in_ch) * double(out_ch) * double(hw_out * hw_out);
        c2.flops_forward += proj_fwd;
        c2.flops_backward += 2.0 * proj_fwd;
        c2.param_bytes += (in_ch * out_ch + 4 * out_ch) * kF32;
      }
      spec.units.push_back(std::move(c1));
      spec.units.push_back(std::move(c2));
      in_ch = out_ch;
      hw = hw_out;
    }
  }

  // Head: global average pool + linear classifier.
  UnitSpec head;
  head.name = "head";
  head.flops_forward = double(in_ch * hw * hw) +  // pool
                       2.0 * double(in_ch) * double(classes);
  head.flops_backward = 2.0 * head.flops_forward;
  head.param_bytes = (in_ch * classes + classes) * kF32;
  head.act_bytes = classes * kF32;
  spec.units.push_back(std::move(head));

  COMDML_CHECK(static_cast<int>(spec.units.size()) == depth);
  return spec;
}

ArchitectureSpec resnet56_spec(int64_t classes) {
  return resnet_cifar_spec(56, classes);
}

ArchitectureSpec resnet110_spec(int64_t classes) {
  return resnet_cifar_spec(110, classes);
}

ArchitectureSpec spec_from_model(const Sequential& model,
                                 const Shape& in_shape, std::string name,
                                 int64_t classes) {
  ArchitectureSpec spec;
  spec.name = std::move(name);
  spec.classes = classes;
  const auto costs = model.unit_costs(in_shape);
  spec.units.reserve(costs.size());
  for (size_t i = 0; i < costs.size(); ++i) {
    UnitSpec u;
    std::ostringstream os;
    os << "unit" << i;
    u.name = os.str();
    u.flops_forward = costs[i].flops_forward;
    u.flops_backward = costs[i].flops_backward;
    u.param_bytes = costs[i].param_bytes;
    u.act_bytes = costs[i].out_bytes;
    spec.units.push_back(std::move(u));
  }
  return spec;
}

}  // namespace comdml::nn
