#include "nn/loss.hpp"

#include <cmath>

namespace comdml::nn {

Tensor softmax(const Tensor& logits) {
  COMDML_REQUIRE(logits.rank() == 2, "softmax expects [N,C], got "
                                         << tensor::shape_str(logits.shape()));
  const int64_t n = logits.dim(0), c = logits.dim(1);
  Tensor out(logits.shape());
  auto li = logits.flat();
  auto oo = out.flat();
  for (int64_t i = 0; i < n; ++i) {
    const float* row = li.data() + i * c;
    float* orow = oo.data() + i * c;
    float mx = row[0];
    for (int64_t j = 1; j < c; ++j) mx = std::max(mx, row[j]);
    double denom = 0.0;
    for (int64_t j = 0; j < c; ++j) {
      orow[j] = std::exp(row[j] - mx);
      denom += orow[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int64_t j = 0; j < c; ++j) orow[j] *= inv;
  }
  return out;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 std::span<const int64_t> labels) {
  COMDML_REQUIRE(logits.rank() == 2, "cross_entropy expects [N,C]");
  const int64_t n = logits.dim(0), c = logits.dim(1);
  COMDML_REQUIRE(static_cast<int64_t>(labels.size()) == n,
                 "cross_entropy: " << labels.size() << " labels for batch "
                                   << n);
  LossResult res;
  res.grad_logits = softmax(logits);
  auto go = res.grad_logits.flat();
  double loss = 0.0;
  int64_t correct = 0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = labels[static_cast<size_t>(i)];
    COMDML_REQUIRE(y >= 0 && y < c, "label " << y << " out of range [0," << c
                                             << ")");
    float* row = go.data() + i * c;
    loss -= std::log(std::max(row[y], 1e-12f));
    int64_t pred = 0;
    for (int64_t j = 1; j < c; ++j)
      if (row[j] > row[pred]) pred = j;
    if (pred == y) ++correct;
    row[y] -= 1.0f;
    for (int64_t j = 0; j < c; ++j) row[j] *= inv_n;
  }
  res.loss = static_cast<float>(loss / static_cast<double>(n));
  res.accuracy = static_cast<float>(correct) / static_cast<float>(n);
  return res;
}

}  // namespace comdml::nn
