#include "nn/bucket.hpp"

#include <algorithm>

namespace comdml::nn {

BucketPlan BucketPlan::build(Sequential& model, int64_t bucket_bytes) {
  COMDML_CHECK(bucket_bytes >= 0);
  BucketPlan plan;

  // Per-unit state tensor ranges (Sequential::collect_state concatenates
  // unit state in unit order) and learnable-parameter counts.
  std::vector<size_t> tensor_unit;  // owning unit per state tensor
  plan.unit_buckets_.resize(model.size());
  plan.unit_param_counts_.resize(model.size(), 0);
  for (size_t u = 0; u < model.size(); ++u) {
    std::vector<tensor::Tensor*> state;
    model.unit(u).collect_state(state);
    for (const tensor::Tensor* t : state) {
      plan.tensor_elems_.push_back(t->size());
      tensor_unit.push_back(u);
    }
    std::vector<Parameter*> params;
    model.unit(u).collect_parameters(params);
    plan.unit_param_counts_[u] = params.size();
  }

  const int64_t cap_elems =
      bucket_bytes == 0
          ? 0
          : std::max<int64_t>(1, bucket_bytes / static_cast<int64_t>(
                                                    sizeof(float)));

  Bucket cur;
  bool open = false;
  const auto close = [&] {
    if (!open) return;
    plan.buckets_.push_back(cur);
    open = false;
  };
  int64_t offset = 0;
  for (size_t t = 0; t < plan.tensor_elems_.size(); ++t) {
    const int64_t elems = plan.tensor_elems_[t];
    if (open && cap_elems > 0 && cur.elems + elems > cap_elems) close();
    if (!open) {
      cur = Bucket{};
      cur.first_tensor = t;
      cur.offset_elems = offset;
      cur.first_unit = tensor_unit[t];
      open = true;
    }
    ++cur.tensor_count;
    cur.elems += elems;
    cur.last_unit = tensor_unit[t];
    offset += elems;
  }
  close();
  plan.total_elems_ = offset;

  for (size_t b = 0; b < plan.buckets_.size(); ++b) {
    const Bucket& bk = plan.buckets_[b];
    for (size_t t = bk.first_tensor; t < bk.first_tensor + bk.tensor_count;
         ++t) {
      auto& owned = plan.unit_buckets_[tensor_unit[t]];
      if (owned.empty() || owned.back() != static_cast<int64_t>(b))
        owned.push_back(static_cast<int64_t>(b));
    }
  }
  return plan;
}

namespace {

template <typename StateT, typename GetFlat>
void for_bucket_tensors(const std::vector<int64_t>& tensor_elems,
                        const Bucket& bk, StateT& state, const GetFlat& fn) {
  COMDML_CHECK(bk.first_tensor + bk.tensor_count <= state.size());
  for (size_t t = bk.first_tensor; t < bk.first_tensor + bk.tensor_count;
       ++t)
    fn(t, tensor_elems[t]);
}

}  // namespace

void BucketPlan::flatten_bucket(const std::vector<tensor::Tensor*>& state,
                                int64_t b, double* out) const {
  const Bucket& bk = bucket(b);
  for_bucket_tensors(tensor_elems_, bk, state, [&](size_t t, int64_t elems) {
    const auto flat = state[t]->flat();
    COMDML_CHECK(static_cast<int64_t>(flat.size()) == elems);
    for (const float v : flat) *out++ = v;
  });
}

void BucketPlan::unflatten_bucket(
    const double* in, int64_t b,
    const std::vector<tensor::Tensor*>& state) const {
  const Bucket& bk = bucket(b);
  for_bucket_tensors(tensor_elems_, bk, state, [&](size_t t, int64_t elems) {
    auto flat = state[t]->flat();
    COMDML_CHECK(static_cast<int64_t>(flat.size()) == elems);
    for (float& v : flat) v = static_cast<float>(*in++);
  });
}

void BucketPlan::flatten_bucket(const std::vector<tensor::Tensor>& state,
                                int64_t b, double* out) const {
  const Bucket& bk = bucket(b);
  for_bucket_tensors(tensor_elems_, bk, state, [&](size_t t, int64_t elems) {
    const auto flat = state[t].flat();
    COMDML_CHECK(static_cast<int64_t>(flat.size()) == elems);
    for (const float v : flat) *out++ = v;
  });
}

void BucketPlan::unflatten_bucket(const double* in, int64_t b,
                                  std::vector<tensor::Tensor>& state) const {
  const Bucket& bk = bucket(b);
  for_bucket_tensors(tensor_elems_, bk, state, [&](size_t t, int64_t elems) {
    auto flat = state[t].flat();
    COMDML_CHECK(static_cast<int64_t>(flat.size()) == elems);
    for (float& v : flat) v = static_cast<float>(*in++);
  });
}

// ---- BucketReadyTracker -----------------------------------------------------

BucketReadyTracker::BucketReadyTracker(const BucketPlan& plan)
    : plan_(&plan),
      pending_units_(static_cast<size_t>(plan.buckets()), 0),
      fired_(static_cast<size_t>(plan.buckets()), 0) {
  for (size_t u = 0; u < plan.units(); ++u)
    for (const int64_t b : plan.unit_buckets(u))
      ++pending_units_[static_cast<size_t>(b)];
}

void BucketReadyTracker::unit_done(size_t u, const ReadyFn& on_ready) {
  COMDML_CHECK(u < plan_->units());
  for (const int64_t b : plan_->unit_buckets(u)) {
    const auto bi = static_cast<size_t>(b);
    COMDML_CHECK(pending_units_[bi] > 0);
    if (--pending_units_[bi] == 0 && !fired_[bi]) {
      fired_[bi] = 1;
      ++fired_count_;
      if (on_ready) on_ready(b);
    }
  }
}

void BucketReadyTracker::finish(const ReadyFn& on_ready) {
  for (int64_t b = 0; b < plan_->buckets(); ++b) {
    const auto bi = static_cast<size_t>(b);
    if (fired_[bi]) continue;
    fired_[bi] = 1;
    ++fired_count_;
    if (on_ready) on_ready(b);
  }
}

}  // namespace comdml::nn
