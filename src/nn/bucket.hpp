// Gradient/parameter bucket registry for overlapped aggregation.
//
// The overlapped round pipeline (core/round_pipeline.hpp) needs model state
// partitioned into fixed-byte buckets so the collective for bucket i can be
// in flight while the compute that produces bucket i+1 is still running.
// This header owns the partition:
//
//  - BucketPlan slices a Sequential's state list (parameters + persistent
//    buffers, Sequential::collect_state order) into buckets of roughly
//    `bucket_bytes` fp32 wire bytes, at whole-tensor granularity, and maps
//    every bucket to the units whose state it holds.
//  - BucketReadyTracker turns unit-by-unit backward completion (the final
//    batch of a round walks units in reverse) into bucket-ready callbacks:
//    a bucket fires the moment the last unit owning any of its tensors has
//    taken its optimizer update, which is when output-side buckets become
//    final while input-side backward compute is still running.
//
// Determinism note: bucketing changes how the flat state vector is split
// across collectives, not what is summed. Halving/doubling reduces every
// element through the same balanced binary tree over agent indices
// regardless of segmentation, so a bucketed halving/doubling round is
// bit-identical to the flat collective for any bucket_bytes. Ring's
// per-element accumulation order rotates with its chunk boundaries, so ring
// results are only guaranteed identical across *schedules with the same
// bucket plan* (e.g. overlapped vs sequential execution of the same
// buckets).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "nn/layers.hpp"

namespace comdml::nn {

/// One fixed-byte slice of the model's flattened state vector.
struct Bucket {
  size_t first_tensor = 0;  ///< index into the model's state list
  size_t tensor_count = 0;
  int64_t elems = 0;         ///< fp32 wire elements in this bucket
  int64_t offset_elems = 0;  ///< offset into the full flat state vector
  size_t first_unit = 0;     ///< lowest Sequential unit with state here
  size_t last_unit = 0;      ///< highest (inclusive)
};

/// Immutable partition of one model architecture's state into buckets.
/// Structurally identical replicas (every fleet agent) share one plan.
class BucketPlan {
 public:
  /// Partition `model`'s state into buckets of at most ~`bucket_bytes`
  /// fp32 wire bytes (4 bytes/element). Whole-tensor granularity: a tensor
  /// never splits across buckets, so a tensor larger than `bucket_bytes`
  /// gets a bucket of its own. `bucket_bytes == 0` yields one bucket
  /// holding the entire state (the flat-collective layout).
  [[nodiscard]] static BucketPlan build(Sequential& model,
                                        int64_t bucket_bytes);

  [[nodiscard]] int64_t buckets() const noexcept {
    return static_cast<int64_t>(buckets_.size());
  }
  [[nodiscard]] const Bucket& bucket(int64_t b) const {
    COMDML_CHECK(b >= 0 && b < buckets());
    return buckets_[static_cast<size_t>(b)];
  }
  [[nodiscard]] int64_t total_elems() const noexcept { return total_elems_; }
  [[nodiscard]] size_t units() const noexcept { return unit_buckets_.size(); }

  /// Buckets holding state of unit `u` (ascending bucket index).
  [[nodiscard]] const std::vector<int64_t>& unit_buckets(size_t u) const {
    COMDML_CHECK(u < unit_buckets_.size());
    return unit_buckets_[u];
  }

  /// Learnable-parameter count per unit (collect_parameters order), for
  /// per-unit optimizer stepping during the final overlapped backward.
  [[nodiscard]] const std::vector<size_t>& unit_param_counts() const
      noexcept {
    return unit_param_counts_;
  }

  /// Copy bucket `b` of a structurally matching state list into `out`
  /// (fp64 accumulator layout, `bucket(b).elems` values) and back. The
  /// pointer overloads serve in-place model state
  /// (Module::collect_state); the value overloads serve snapshot lists.
  void flatten_bucket(const std::vector<tensor::Tensor*>& state, int64_t b,
                      double* out) const;
  void unflatten_bucket(const double* in, int64_t b,
                        const std::vector<tensor::Tensor*>& state) const;
  void flatten_bucket(const std::vector<tensor::Tensor>& state, int64_t b,
                      double* out) const;
  void unflatten_bucket(const double* in, int64_t b,
                        std::vector<tensor::Tensor>& state) const;

 private:
  std::vector<Bucket> buckets_;
  std::vector<int64_t> tensor_elems_;  ///< per state tensor, plan order
  std::vector<std::vector<int64_t>> unit_buckets_;  ///< per unit
  std::vector<size_t> unit_param_counts_;
  int64_t total_elems_ = 0;
};

/// Per-agent, per-round readiness tracker. Call unit_done(u) as the final
/// batch's backward finalizes unit u (reverse unit order); every bucket
/// whose owning units have all completed fires `on_ready` exactly once.
class BucketReadyTracker {
 public:
  using ReadyFn = std::function<void(int64_t bucket)>;

  explicit BucketReadyTracker(const BucketPlan& plan);

  /// Unit `u`'s state is final (backward + optimizer update done).
  void unit_done(size_t u, const ReadyFn& on_ready);

  /// Fire every bucket that has not fired yet (state finalized by some
  /// path other than the unit-by-unit walk).
  void finish(const ReadyFn& on_ready);

  [[nodiscard]] int64_t fired() const noexcept { return fired_count_; }

 private:
  const BucketPlan* plan_;
  std::vector<int> pending_units_;  ///< per bucket: owning units not done
  std::vector<char> fired_;
  int64_t fired_count_ = 0;
};

}  // namespace comdml::nn
