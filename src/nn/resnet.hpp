// CIFAR-style residual networks (He et al., 2016) and small model builders.
//
// Models are exposed as Sequential containers whose units are ComDML's
// split boundaries: [stem][block 1]...[block B][head]. ResNet-56 has
// B = 27 blocks (9 per stage); ResNet-110 has B = 54.
#pragma once

#include "nn/conv.hpp"
#include "nn/layers.hpp"
#include "nn/norm.hpp"

namespace comdml::nn {

/// Standard two-conv residual block with optional 1x1 downsampling shortcut.
class BasicBlock : public Module {
 public:
  BasicBlock(int64_t in_channels, int64_t out_channels, int64_t stride,
             Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  void collect_state(std::vector<Tensor*>& out) override;
  [[nodiscard]] LayerCost cost(const Shape& in_shape) const override;
  [[nodiscard]] std::string kind() const override { return "basicblock"; }

 private:
  Conv2d conv1_;
  BatchNorm2d bn1_;
  ReLU relu1_;
  Conv2d conv2_;
  BatchNorm2d bn2_;
  ReLU relu_out_;
  // Downsampling shortcut (1x1 conv + BN); null for identity shortcuts.
  std::unique_ptr<Conv2d> short_conv_;
  std::unique_ptr<BatchNorm2d> short_bn_;
  bool identity_shortcut_;
};

/// CIFAR ResNet of depth 6n+2 with `blocks_per_stage = n` blocks in each of
/// the three stages (channel widths base, 2*base, 4*base).
[[nodiscard]] std::unique_ptr<Sequential> make_resnet_cifar(
    int64_t blocks_per_stage, int64_t base_channels, int64_t classes,
    Rng& rng);

/// ResNet-56 for 3x32x32 inputs (blocks_per_stage = 9, base = 16).
[[nodiscard]] std::unique_ptr<Sequential> resnet56(int64_t classes, Rng& rng);

/// ResNet-110 for 3x32x32 inputs (blocks_per_stage = 18, base = 16).
[[nodiscard]] std::unique_ptr<Sequential> resnet110(int64_t classes, Rng& rng);

/// Tiny ResNet (one block per stage, base 8 channels) for fast tests and
/// examples; expects 3x8x8 (or larger) inputs.
[[nodiscard]] std::unique_ptr<Sequential> tiny_resnet(int64_t classes,
                                                      Rng& rng);

/// Small conv net (conv-bn-relu x2 + head) for fast real-training paths.
[[nodiscard]] std::unique_ptr<Sequential> small_cnn(int64_t in_channels,
                                                    int64_t classes, Rng& rng);

/// Plain MLP with the given layer widths; input is flat features.
[[nodiscard]] std::unique_ptr<Sequential> mlp(
    const std::vector<int64_t>& widths, Rng& rng);

}  // namespace comdml::nn
