// Softmax cross-entropy loss with gradient, plus accuracy accounting.
#pragma once

#include <span>

#include "nn/module.hpp"

namespace comdml::nn {

struct LossResult {
  float loss = 0.0f;      ///< mean negative log-likelihood over the batch
  float accuracy = 0.0f;  ///< fraction of argmax-correct predictions
  Tensor grad_logits;     ///< d(mean loss)/d(logits), shape [N, C]
};

/// Numerically stable softmax cross-entropy on logits [N, C].
/// Labels must lie in [0, C).
[[nodiscard]] LossResult softmax_cross_entropy(
    const Tensor& logits, std::span<const int64_t> labels);

/// Row-wise softmax probabilities (for inspection / calibration tests).
[[nodiscard]] Tensor softmax(const Tensor& logits);

}  // namespace comdml::nn
