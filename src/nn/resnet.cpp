#include "nn/resnet.hpp"

namespace comdml::nn {

BasicBlock::BasicBlock(int64_t in_channels, int64_t out_channels,
                       int64_t stride, Rng& rng)
    : conv1_(in_channels, out_channels, 3, stride, 1, rng),
      bn1_(out_channels),
      conv2_(out_channels, out_channels, 3, 1, 1, rng),
      bn2_(out_channels),
      identity_shortcut_(stride == 1 && in_channels == out_channels) {
  if (!identity_shortcut_) {
    short_conv_ =
        std::make_unique<Conv2d>(in_channels, out_channels, 1, stride, 0, rng);
    short_bn_ = std::make_unique<BatchNorm2d>(out_channels);
  }
}

Tensor BasicBlock::forward(const Tensor& x, bool train) {
  Tensor main = conv1_.forward(x, train);
  main = bn1_.forward(main, train);
  main = relu1_.forward(main, train);
  main = conv2_.forward(main, train);
  main = bn2_.forward(main, train);
  if (identity_shortcut_) {
    tensor::add_inplace(main, x);  // no shortcut copy on the identity path
  } else {
    const Tensor shortcut =
        short_bn_->forward(short_conv_->forward(x, train), train);
    tensor::add_inplace(main, shortcut);
  }
  return relu_out_.forward(main, train);
}

Tensor BasicBlock::backward(const Tensor& grad_out) {
  const Tensor d_sum = relu_out_.backward(grad_out);
  // Main path.
  Tensor d = bn2_.backward(d_sum);
  d = conv2_.backward(d);
  d = relu1_.backward(d);
  d = bn1_.backward(d);
  Tensor dx = conv1_.backward(d);
  // Shortcut path.
  if (identity_shortcut_) {
    tensor::axpy(1.0f, d_sum, dx);
  } else {
    Tensor ds = short_bn_->backward(d_sum);
    ds = short_conv_->backward(ds);
    tensor::axpy(1.0f, ds, dx);
  }
  return dx;
}

void BasicBlock::collect_parameters(std::vector<Parameter*>& out) {
  conv1_.collect_parameters(out);
  bn1_.collect_parameters(out);
  conv2_.collect_parameters(out);
  bn2_.collect_parameters(out);
  if (!identity_shortcut_) {
    short_conv_->collect_parameters(out);
    short_bn_->collect_parameters(out);
  }
}

void BasicBlock::collect_state(std::vector<Tensor*>& out) {
  conv1_.collect_state(out);
  bn1_.collect_state(out);
  conv2_.collect_state(out);
  bn2_.collect_state(out);
  if (!identity_shortcut_) {
    short_conv_->collect_state(out);
    short_bn_->collect_state(out);
  }
}

LayerCost BasicBlock::cost(const Shape& in_shape) const {
  LayerCost total;
  Shape cur = in_shape;
  for (const Module* m :
       std::initializer_list<const Module*>{&conv1_, &bn1_, &relu1_, &conv2_,
                                            &bn2_}) {
    const LayerCost c = m->cost(cur);
    total.flops_forward += c.flops_forward;
    total.flops_backward += c.flops_backward;
    total.param_bytes += c.param_bytes;
    cur = c.out_shape;
  }
  if (!identity_shortcut_) {
    const LayerCost sc = short_conv_->cost(in_shape);
    const LayerCost sb = short_bn_->cost(sc.out_shape);
    total.flops_forward += sc.flops_forward + sb.flops_forward;
    total.flops_backward += sc.flops_backward + sb.flops_backward;
    total.param_bytes += sc.param_bytes + sb.param_bytes;
  }
  // Residual add + output ReLU.
  const auto n = static_cast<double>(tensor::shape_size(cur));
  total.flops_forward += 2.0 * n;
  total.flops_backward += 2.0 * n;
  total.out_bytes =
      tensor::shape_size(cur) * static_cast<int64_t>(sizeof(float));
  total.out_shape = cur;
  return total;
}

namespace {

/// conv-bn-relu stem packaged as one split unit.
std::unique_ptr<Sequential> make_stem(int64_t in_channels,
                                      int64_t out_channels, Rng& rng) {
  auto stem = std::make_unique<Sequential>();
  stem->push(std::make_unique<Conv2d>(in_channels, out_channels, 3, 1, 1,
                                      rng));
  stem->push(std::make_unique<BatchNorm2d>(out_channels));
  stem->push(std::make_unique<ReLU>());
  return stem;
}

/// pool + classifier head packaged as one split unit.
std::unique_ptr<Sequential> make_head(int64_t channels, int64_t classes,
                                      Rng& rng) {
  auto head = std::make_unique<Sequential>();
  head->push(std::make_unique<GlobalAvgPool2d>());
  head->push(std::make_unique<Linear>(channels, classes, rng));
  return head;
}

}  // namespace

std::unique_ptr<Sequential> make_resnet_cifar(int64_t blocks_per_stage,
                                              int64_t base_channels,
                                              int64_t classes, Rng& rng) {
  COMDML_CHECK(blocks_per_stage > 0 && base_channels > 0 && classes > 1);
  auto net = std::make_unique<Sequential>();
  net->push(make_stem(3, base_channels, rng));
  int64_t in_ch = base_channels;
  for (int stage = 0; stage < 3; ++stage) {
    const int64_t out_ch = base_channels << stage;
    for (int64_t b = 0; b < blocks_per_stage; ++b) {
      const int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      net->push(std::make_unique<BasicBlock>(in_ch, out_ch, stride, rng));
      in_ch = out_ch;
    }
  }
  net->push(make_head(in_ch, classes, rng));
  return net;
}

std::unique_ptr<Sequential> resnet56(int64_t classes, Rng& rng) {
  return make_resnet_cifar(9, 16, classes, rng);
}

std::unique_ptr<Sequential> resnet110(int64_t classes, Rng& rng) {
  return make_resnet_cifar(18, 16, classes, rng);
}

std::unique_ptr<Sequential> tiny_resnet(int64_t classes, Rng& rng) {
  return make_resnet_cifar(1, 8, classes, rng);
}

std::unique_ptr<Sequential> small_cnn(int64_t in_channels, int64_t classes,
                                      Rng& rng) {
  auto net = std::make_unique<Sequential>();
  net->push(make_stem(in_channels, 8, rng));
  auto body = std::make_unique<Sequential>();
  body->push(std::make_unique<Conv2d>(8, 16, 3, 2, 1, rng));
  body->push(std::make_unique<BatchNorm2d>(16));
  body->push(std::make_unique<ReLU>());
  net->push(std::move(body));
  net->push(make_head(16, classes, rng));
  return net;
}

std::unique_ptr<Sequential> mlp(const std::vector<int64_t>& widths, Rng& rng) {
  COMDML_REQUIRE(widths.size() >= 2, "mlp needs at least input+output widths");
  auto net = std::make_unique<Sequential>();
  for (size_t i = 0; i + 1 < widths.size(); ++i) {
    auto unit = std::make_unique<Sequential>();
    unit->push(std::make_unique<Linear>(widths[i], widths[i + 1], rng));
    if (i + 2 < widths.size()) unit->push(std::make_unique<ReLU>());
    net->push(std::move(unit));
  }
  return net;
}

}  // namespace comdml::nn
