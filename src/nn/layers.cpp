#include "nn/layers.hpp"

#include "tensor/gemm.hpp"

namespace comdml::nn {

using tensor::matmul;
using tensor::matmul_nt;
using tensor::matmul_tn;

// ---- state helpers ----------------------------------------------------------

std::vector<Tensor> state_of(Module& m) {
  std::vector<Tensor*> ptrs;
  m.collect_state(ptrs);
  std::vector<Tensor> out;
  out.reserve(ptrs.size());
  for (auto* t : ptrs) out.push_back(*t);
  return out;
}

void load_state(Module& m, const std::vector<Tensor>& state) {
  std::vector<Tensor*> ptrs;
  m.collect_state(ptrs);
  COMDML_REQUIRE(ptrs.size() == state.size(),
                 "load_state: model has " << ptrs.size()
                                          << " state tensors, snapshot has "
                                          << state.size());
  for (size_t i = 0; i < ptrs.size(); ++i) {
    COMDML_REQUIRE(ptrs[i]->shape() == state[i].shape(),
                   "load_state: shape mismatch at tensor " << i);
    *ptrs[i] = state[i];
  }
}

void copy_state_into(Module& m, std::vector<Tensor>& out) {
  // The pointer scratch keeps its capacity across calls so the round loop
  // stays allocation-free, matching the Tensor-storage reuse below.
  thread_local std::vector<Tensor*> ptrs;
  ptrs.clear();
  m.collect_state(ptrs);
  out.resize(ptrs.size());
  // Tensor copy-assignment reuses the destination's storage when the
  // element count fits, so a shape-stable fleet stops allocating here
  // after the first round.
  for (size_t i = 0; i < ptrs.size(); ++i) out[i] = *ptrs[i];
}

int64_t parameter_count(Module& m) {
  int64_t n = 0;
  for (auto* p : m.parameters()) n += p->value.size();
  return n;
}

int64_t state_bytes(Module& m) {
  std::vector<Tensor*> ptrs;
  m.collect_state(ptrs);
  int64_t n = 0;
  for (auto* t : ptrs) n += t->nbytes();
  return n;
}

// ---- Linear -----------------------------------------------------------------

Linear::Linear(int64_t in_features, int64_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      weight_("linear.weight", rng.he_normal({out_features, in_features},
                                             in_features)),
      bias_("linear.bias", Tensor({out_features})) {
  COMDML_CHECK(in_features > 0 && out_features > 0);
}

Tensor Linear::forward(const Tensor& x, bool /*train*/) {
  COMDML_REQUIRE(x.rank() == 2 && x.dim(1) == in_,
                 "linear: expected [N," << in_ << "], got "
                                        << tensor::shape_str(x.shape()));
  cached_input_ = x;
  Tensor y = matmul_nt(x, weight_.value);  // [N,out]
  const int64_t n = y.dim(0);
  auto yo = y.flat();
  const auto bo = bias_.value.flat();
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < out_; ++j) yo[i * out_ + j] += bo[j];
  return y;
}

Tensor Linear::backward(const Tensor& grad_out) {
  COMDML_REQUIRE(grad_out.rank() == 2 && grad_out.dim(1) == out_,
                 "linear backward: bad grad shape "
                     << tensor::shape_str(grad_out.shape()));
  COMDML_CHECK(!cached_input_.empty());
  // dW = dY^T X accumulated straight into the grad tensor (no [out,in]
  // temporary + axpy pass), db = colsum(dY), dX = dY W.
  tensor::gemm_tn(grad_out.flat().data(), cached_input_.flat().data(),
                  weight_.grad.flat().data(), out_, grad_out.dim(0), in_,
                  /*accumulate=*/true);
  const int64_t n = grad_out.dim(0);
  auto go = grad_out.flat();
  auto bg = bias_.grad.flat();
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < out_; ++j) bg[j] += go[i * out_ + j];
  return matmul(grad_out, weight_.value);  // [N,in]
}

void Linear::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
  out.push_back(&bias_);
}

LayerCost Linear::cost(const Shape& in_shape) const {
  COMDML_REQUIRE(in_shape.size() == 1 && in_shape[0] == in_,
                 "linear cost: expected [" << in_ << "]");
  LayerCost c;
  c.flops_forward = 2.0 * static_cast<double>(in_) * static_cast<double>(out_);
  c.flops_backward = 2.0 * c.flops_forward;
  c.param_bytes = (in_ * out_ + out_) * static_cast<int64_t>(sizeof(float));
  c.out_bytes = out_ * static_cast<int64_t>(sizeof(float));
  c.out_shape = {out_};
  return c;
}

// ---- ReLU -------------------------------------------------------------------

Tensor ReLU::forward(const Tensor& x, bool /*train*/) {
  Tensor y(x.shape());
  Tensor mask(x.shape());
  auto xi = x.flat();
  auto yo = y.flat();
  auto mo = mask.flat();
  for (size_t i = 0; i < xi.size(); ++i) {
    const bool pos = xi[i] > 0.0f;
    yo[i] = pos ? xi[i] : 0.0f;
    mo[i] = pos ? 1.0f : 0.0f;
  }
  cached_mask_ = std::move(mask);
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  COMDML_CHECK(!cached_mask_.empty());
  return tensor::mul(grad_out, cached_mask_);
}

LayerCost ReLU::cost(const Shape& in_shape) const {
  LayerCost c;
  const auto n = static_cast<double>(tensor::shape_size(in_shape));
  c.flops_forward = n;
  c.flops_backward = n;
  c.out_bytes = tensor::shape_size(in_shape) *
                static_cast<int64_t>(sizeof(float));
  c.out_shape = in_shape;
  return c;
}

// ---- Flatten ----------------------------------------------------------------

Tensor Flatten::forward(const Tensor& x, bool /*train*/) {
  COMDML_CHECK(x.rank() >= 2);
  cached_in_shape_ = x.shape();
  int64_t features = 1;
  for (size_t a = 1; a < x.rank(); ++a) features *= x.dim(a);
  return x.reshaped({x.dim(0), features});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  COMDML_CHECK(!cached_in_shape_.empty());
  return grad_out.reshaped(cached_in_shape_);
}

LayerCost Flatten::cost(const Shape& in_shape) const {
  LayerCost c;
  c.out_bytes =
      tensor::shape_size(in_shape) * static_cast<int64_t>(sizeof(float));
  c.out_shape = {tensor::shape_size(in_shape)};
  return c;
}

// ---- GlobalAvgPool2d --------------------------------------------------------

Tensor GlobalAvgPool2d::forward(const Tensor& x, bool /*train*/) {
  COMDML_REQUIRE(x.rank() == 4, "gavgpool expects [N,C,H,W], got "
                                    << tensor::shape_str(x.shape()));
  cached_in_shape_ = x.shape();
  const int64_t n = x.dim(0), c = x.dim(1), hw = x.dim(2) * x.dim(3);
  Tensor y({n, c});
  auto xi = x.flat();
  auto yo = y.flat();
  const float inv = 1.0f / static_cast<float>(hw);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < c; ++j) {
      const float* p = xi.data() + (i * c + j) * hw;
      double acc = 0.0;
      for (int64_t k = 0; k < hw; ++k) acc += p[k];
      yo[i * c + j] = static_cast<float>(acc) * inv;
    }
  }
  return y;
}

Tensor GlobalAvgPool2d::backward(const Tensor& grad_out) {
  COMDML_CHECK(!cached_in_shape_.empty());
  const int64_t n = cached_in_shape_[0], c = cached_in_shape_[1],
                hw = cached_in_shape_[2] * cached_in_shape_[3];
  COMDML_CHECK(grad_out.rank() == 2 && grad_out.dim(0) == n &&
               grad_out.dim(1) == c);
  Tensor dx(cached_in_shape_);
  auto go = grad_out.flat();
  auto dxo = dx.flat();
  const float inv = 1.0f / static_cast<float>(hw);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < c; ++j) {
      const float g = go[i * c + j] * inv;
      float* p = dxo.data() + (i * c + j) * hw;
      for (int64_t k = 0; k < hw; ++k) p[k] = g;
    }
  return dx;
}

LayerCost GlobalAvgPool2d::cost(const Shape& in_shape) const {
  COMDML_REQUIRE(in_shape.size() == 3, "gavgpool cost expects [C,H,W]");
  LayerCost c;
  c.flops_forward = static_cast<double>(tensor::shape_size(in_shape));
  c.flops_backward = c.flops_forward;
  c.out_bytes = in_shape[0] * static_cast<int64_t>(sizeof(float));
  c.out_shape = {in_shape[0]};
  return c;
}

// ---- Sequential -------------------------------------------------------------

Tensor Sequential::forward_range(const Tensor& x, size_t begin, size_t end,
                                 bool train) {
  COMDML_REQUIRE(begin <= end && end <= units_.size(),
                 "forward_range [" << begin << "," << end << ") of "
                                   << units_.size());
  Tensor cur = x;
  for (size_t i = begin; i < end; ++i) cur = units_[i]->forward(cur, train);
  return cur;
}

Tensor Sequential::backward_range(const Tensor& grad_out, size_t begin,
                                  size_t end) {
  COMDML_REQUIRE(begin <= end && end <= units_.size(),
                 "backward_range [" << begin << "," << end << ") of "
                                    << units_.size());
  Tensor cur = grad_out;
  for (size_t i = end; i > begin; --i) cur = units_[i - 1]->backward(cur);
  return cur;
}

void Sequential::collect_parameters(std::vector<Parameter*>& out) {
  for (auto& u : units_) u->collect_parameters(out);
}

void Sequential::collect_state(std::vector<Tensor*>& out) {
  for (auto& u : units_) u->collect_state(out);
}

LayerCost Sequential::cost(const Shape& in_shape) const {
  LayerCost total;
  total.out_shape = in_shape;
  for (const auto& u : units_) {
    const LayerCost c = u->cost(total.out_shape);
    total.flops_forward += c.flops_forward;
    total.flops_backward += c.flops_backward;
    total.param_bytes += c.param_bytes;
    total.out_bytes = c.out_bytes;
    total.out_shape = c.out_shape;
  }
  return total;
}

std::vector<LayerCost> Sequential::unit_costs(const Shape& in_shape) const {
  std::vector<LayerCost> out;
  out.reserve(units_.size());
  Shape cur = in_shape;
  for (const auto& u : units_) {
    out.push_back(u->cost(cur));
    cur = out.back().out_shape;
  }
  return out;
}

}  // namespace comdml::nn
