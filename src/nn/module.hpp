// Layer/module abstraction with explicit forward/backward passes.
//
// ComDML needs three things from its NN substrate that off-the-shelf
// frameworks hide: (1) models must be splittable at unit boundaries into a
// slow-agent prefix and fast-agent suffix, (2) every unit must report a cost
// descriptor (FLOPs, parameter bytes, activation bytes) for split-model
// profiling, and (3) parameter state must be exportable as flat tensors for
// decentralized aggregation. The Module interface makes all three explicit.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/ops.hpp"
#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace comdml::nn {

using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

/// A learnable tensor with its gradient accumulator.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter(std::string n, Tensor v)
      : name(std::move(n)), value(std::move(v)), grad(value.shape()) {}
};

/// Per-sample cost descriptor of one unit, used by split-model profiling.
struct LayerCost {
  double flops_forward = 0.0;   ///< multiply-accumulates counted as 2 FLOPs
  double flops_backward = 0.0;  ///< grad wrt input + grad wrt params
  int64_t param_bytes = 0;      ///< learnable parameter payload
  int64_t out_bytes = 0;        ///< activation bytes leaving this unit
  Shape out_shape;              ///< per-sample output shape (no batch dim)
};

/// Base class of all layers/blocks. Units cache whatever they need during
/// forward() and consume it in backward(); callers must keep the usual
/// forward-then-backward discipline.
class Module {
 public:
  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  virtual ~Module() = default;

  /// Run the unit on a batched input. `train` enables training-time
  /// behaviour (e.g. batch-norm batch statistics).
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  /// Propagate `grad_out` (same shape as the last forward output) back to
  /// the input, accumulating parameter gradients.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Append raw pointers to this unit's learnable parameters.
  virtual void collect_parameters(std::vector<Parameter*>& /*out*/) {}

  /// Append pointers to all state tensors (parameters plus persistent
  /// buffers such as batch-norm running statistics). This is what gets
  /// averaged during decentralized aggregation.
  virtual void collect_state(std::vector<Tensor*>& out) {
    std::vector<Parameter*> params;
    collect_parameters(params);
    for (auto* p : params) out.push_back(&p->value);
  }

  /// Cost descriptor for a per-sample input of `in_shape`.
  [[nodiscard]] virtual LayerCost cost(const Shape& in_shape) const = 0;

  /// Short layer-kind tag for diagnostics ("conv3x3", "linear", ...).
  [[nodiscard]] virtual std::string kind() const = 0;

  [[nodiscard]] std::vector<Parameter*> parameters() {
    std::vector<Parameter*> out;
    collect_parameters(out);
    return out;
  }

  /// Zero all parameter gradients.
  void zero_grad() {
    for (auto* p : parameters()) p->grad.fill(0.0f);
  }
};

using ModulePtr = std::unique_ptr<Module>;

// ---- whole-model state helpers ---------------------------------------------

/// Snapshot of all state tensors (deep copy), aggregation/exchange unit.
[[nodiscard]] std::vector<Tensor> state_of(Module& m);

/// Load a snapshot produced by state_of() from a structurally identical
/// model. Throws on shape mismatch.
void load_state(Module& m, const std::vector<Tensor>& state);

/// Snapshot m's state into `out`, reusing the existing tensor storage when
/// shapes already match — the zero-steady-state-allocation variant of
/// state_of() for per-round merge buffers.
void copy_state_into(Module& m, std::vector<Tensor>& out);

/// Total learnable-parameter count.
[[nodiscard]] int64_t parameter_count(Module& m);

/// Total state payload in bytes (what aggregation moves per model).
[[nodiscard]] int64_t state_bytes(Module& m);

}  // namespace comdml::nn
