#include "nn/norm.hpp"

#include <cmath>

namespace comdml::nn {

BatchNorm2d::BatchNorm2d(int64_t channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_("bn.gamma", Tensor({channels}, 1.0f)),
      beta_("bn.beta", Tensor({channels})),
      running_mean_({channels}),
      running_var_({channels}, 1.0f) {
  COMDML_CHECK(channels > 0 && momentum > 0.0f && momentum <= 1.0f &&
               eps > 0.0f);
}

Tensor BatchNorm2d::forward(const Tensor& x, bool train) {
  COMDML_REQUIRE(x.rank() == 4 && x.dim(1) == channels_,
                 "batchnorm: expected [N," << channels_ << ",H,W], got "
                                           << tensor::shape_str(x.shape()));
  const int64_t n = x.dim(0), c = channels_, hw = x.dim(2) * x.dim(3);
  const int64_t per_channel = n * hw;
  Tensor y(x.shape());
  const float* xp = x.flat().data();
  float* yp = y.flat().data();
  const float* gp = gamma_.value.flat().data();
  const float* bp = beta_.value.flat().data();

  if (train) {
    // Reuse the cached scratch storage across steps (steady-state shapes
    // are fixed); both tensors are fully rewritten below.
    cached_xhat_.resize(x.shape());
    cached_inv_std_.resize({c});
    float* xh = cached_xhat_.flat().data();
    float* is = cached_inv_std_.flat().data();
    float* rm = running_mean_.flat().data();
    float* rv = running_var_.flat().data();
    for (int64_t j = 0; j < c; ++j) {
      double mean = 0.0, var = 0.0;
      for (int64_t i = 0; i < n; ++i) {
        const float* p = xp + (i * c + j) * hw;
        for (int64_t k = 0; k < hw; ++k) mean += p[k];
      }
      mean /= static_cast<double>(per_channel);
      for (int64_t i = 0; i < n; ++i) {
        const float* p = xp + (i * c + j) * hw;
        for (int64_t k = 0; k < hw; ++k) {
          const double d = p[k] - mean;
          var += d * d;
        }
      }
      var /= static_cast<double>(per_channel);
      const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
      is[j] = inv_std;
      rm[j] = (1.0f - momentum_) * rm[j] +
              momentum_ * static_cast<float>(mean);
      rv[j] = (1.0f - momentum_) * rv[j] + momentum_ * static_cast<float>(var);
      for (int64_t i = 0; i < n; ++i) {
        const float* p = xp + (i * c + j) * hw;
        float* xhp = xh + (i * c + j) * hw;
        float* yq = yp + (i * c + j) * hw;
        for (int64_t k = 0; k < hw; ++k) {
          const float v = (p[k] - static_cast<float>(mean)) * inv_std;
          xhp[k] = v;
          yq[k] = gp[j] * v + bp[j];
        }
      }
    }
  } else {
    const float* rm = running_mean_.flat().data();
    const float* rv = running_var_.flat().data();
    for (int64_t j = 0; j < c; ++j) {
      const float inv_std = 1.0f / std::sqrt(rv[j] + eps_);
      for (int64_t i = 0; i < n; ++i) {
        const float* p = xp + (i * c + j) * hw;
        float* yq = yp + (i * c + j) * hw;
        for (int64_t k = 0; k < hw; ++k)
          yq[k] = gp[j] * (p[k] - rm[j]) * inv_std + bp[j];
      }
    }
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  COMDML_CHECK(!cached_xhat_.empty());
  const Shape& s = cached_xhat_.shape();
  COMDML_CHECK(grad_out.shape() == s);
  const int64_t n = s[0], c = s[1], hw = s[2] * s[3];
  const auto m = static_cast<float>(n * hw);

  Tensor dx(s);
  const float* gp = grad_out.flat().data();
  const float* xh = cached_xhat_.flat().data();
  const float* is = cached_inv_std_.flat().data();
  const float* gam = gamma_.value.flat().data();
  float* dxp = dx.flat().data();
  float* dgam = gamma_.grad.flat().data();
  float* dbet = beta_.grad.flat().data();

  for (int64_t j = 0; j < c; ++j) {
    double sum_dy = 0.0, sum_dy_xh = 0.0;
    for (int64_t i = 0; i < n; ++i) {
      const float* g = gp + (i * c + j) * hw;
      const float* xq = xh + (i * c + j) * hw;
      for (int64_t k = 0; k < hw; ++k) {
        sum_dy += g[k];
        sum_dy_xh += double(g[k]) * xq[k];
      }
    }
    dgam[j] += static_cast<float>(sum_dy_xh);
    dbet[j] += static_cast<float>(sum_dy);
    const float a = gam[j] * is[j];
    const float mean_dy = static_cast<float>(sum_dy) / m;
    const float mean_dy_xh = static_cast<float>(sum_dy_xh) / m;
    for (int64_t i = 0; i < n; ++i) {
      const float* g = gp + (i * c + j) * hw;
      const float* xq = xh + (i * c + j) * hw;
      float* d = dxp + (i * c + j) * hw;
      for (int64_t k = 0; k < hw; ++k)
        d[k] = a * (g[k] - mean_dy - xq[k] * mean_dy_xh);
    }
  }
  return dx;
}

void BatchNorm2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&gamma_);
  out.push_back(&beta_);
}

void BatchNorm2d::collect_state(std::vector<Tensor*>& out) {
  out.push_back(&gamma_.value);
  out.push_back(&beta_.value);
  out.push_back(&running_mean_);
  out.push_back(&running_var_);
}

LayerCost BatchNorm2d::cost(const Shape& in_shape) const {
  COMDML_REQUIRE(in_shape.size() == 3 && in_shape[0] == channels_,
                 "batchnorm cost: expected [" << channels_ << ",H,W]");
  LayerCost c;
  const auto n = static_cast<double>(tensor::shape_size(in_shape));
  c.flops_forward = 4.0 * n;
  c.flops_backward = 8.0 * n;
  c.param_bytes = 2 * channels_ * static_cast<int64_t>(sizeof(float));
  c.out_bytes =
      tensor::shape_size(in_shape) * static_cast<int64_t>(sizeof(float));
  c.out_shape = in_shape;
  return c;
}

}  // namespace comdml::nn
