#include "nn/conv.hpp"

#include <cstring>
#include <sstream>

#include "core/parallel.hpp"
#include "core/workspace.hpp"
#include "tensor/gemm.hpp"

namespace comdml::nn {

namespace {

/// Unrolls one sample x_c [cin,h,w] into col [ho*wo, cin*k*k] (row-major):
/// row r = oy*wo + ox holds the receptive field of output position (oy,ox),
/// column c = (ci*k + ky)*k + kx — the flattened-weight column order.
void im2col(const float* xc, int64_t cin, int64_t h, int64_t w, int64_t k,
            int64_t stride, int64_t pad, int64_t ho, int64_t wo, float* col) {
  const int64_t ckk = cin * k * k;
  for (int64_t oy = 0; oy < ho; ++oy) {
    const int64_t iy0 = oy * stride - pad;
    for (int64_t ox = 0; ox < wo; ++ox) {
      const int64_t ix0 = ox * stride - pad;
      float* row = col + (oy * wo + ox) * ckk;
      for (int64_t ci = 0; ci < cin; ++ci) {
        const float* xch = xc + ci * h * w;
        for (int64_t ky = 0; ky < k; ++ky) {
          const int64_t iy = iy0 + ky;
          float* dst = row + (ci * k + ky) * k;
          if (iy < 0 || iy >= h) {
            for (int64_t kx = 0; kx < k; ++kx) dst[kx] = 0.0f;
            continue;
          }
          const float* src = xch + iy * w;
          for (int64_t kx = 0; kx < k; ++kx) {
            const int64_t ix = ix0 + kx;
            dst[kx] = (ix < 0 || ix >= w) ? 0.0f : src[ix];
          }
        }
      }
    }
  }
}

/// Scatter-adds dcol [ho*wo, cin*k*k] back into one sample gradient
/// dx_c [cin,h,w]. Fixed (row, column)-ascending order keeps the
/// overlapping-window accumulation deterministic.
void col2im(const float* dcol, int64_t cin, int64_t h, int64_t w, int64_t k,
            int64_t stride, int64_t pad, int64_t ho, int64_t wo, float* dxc) {
  const int64_t ckk = cin * k * k;
  for (int64_t oy = 0; oy < ho; ++oy) {
    const int64_t iy0 = oy * stride - pad;
    for (int64_t ox = 0; ox < wo; ++ox) {
      const int64_t ix0 = ox * stride - pad;
      const float* row = dcol + (oy * wo + ox) * ckk;
      for (int64_t ci = 0; ci < cin; ++ci) {
        float* dxch = dxc + ci * h * w;
        for (int64_t ky = 0; ky < k; ++ky) {
          const int64_t iy = iy0 + ky;
          if (iy < 0 || iy >= h) continue;
          const float* src = row + (ci * k + ky) * k;
          float* dst = dxch + iy * w;
          for (int64_t kx = 0; kx < k; ++kx) {
            const int64_t ix = ix0 + kx;
            if (ix < 0 || ix >= w) continue;
            dst[ix] += src[kx];
          }
        }
      }
    }
  }
}

/// Scatter one sample's GEMM output block [how, cout] into the layer
/// output layout [cout, how].
void transpose_to_chw(const float* src, int64_t how, int64_t cout,
                      float* dst) {
  for (int64_t co = 0; co < cout; ++co)
    for (int64_t p = 0; p < how; ++p) dst[co * how + p] = src[p * cout + co];
}

/// Gather one sample's grad block [cout, how] into GEMM layout [how, cout].
void transpose_to_hwc(const float* src, int64_t cout, int64_t how,
                      float* dst) {
  for (int64_t p = 0; p < how; ++p)
    for (int64_t co = 0; co < cout; ++co) dst[p * cout + co] = src[co * how + p];
}

/// Cap on the batched path's total live arena scratch (all slabs of one
/// pass combined): beyond this the layer falls back to the per-sample GEMM
/// loop instead of growing the workspace arena unboundedly.
constexpr int64_t kMaxBatchedScratchBytes = int64_t{256} << 20;

}  // namespace

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t padding, Rng& rng)
    : cin_(in_channels),
      cout_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(padding),
      weight_("conv.weight",
              rng.he_normal({out_channels, in_channels, kernel, kernel},
                            in_channels * kernel * kernel)) {
  COMDML_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 &&
               stride > 0 && padding >= 0);
}

std::string Conv2d::kind() const {
  std::ostringstream os;
  os << "conv" << k_ << "x" << k_;
  return os.str();
}

Tensor Conv2d::forward(const Tensor& x, bool /*train*/) {
  COMDML_REQUIRE(x.rank() == 4 && x.dim(1) == cin_,
                 "conv: expected [N," << cin_ << ",H,W], got "
                                      << tensor::shape_str(x.shape()));
  cached_input_ = x;
  const int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int64_t ho = out_extent(h), wo = out_extent(w);
  COMDML_REQUIRE(ho > 0 && wo > 0, "conv: input " << h << "x" << w
                                                  << " too small for kernel");
  Tensor y({n, cout_, ho, wo});
  const int64_t how = ho * wo;
  const int64_t ckk = cin_ * k_ * k_;
  // weight is [cout, cin, k, k] row-major == [cout, ckk] flattened.
  const float* wp = weight_.value.flat().data();
  const float* xp = x.flat().data();
  float* yp = y.flat().data();

  // One multi-sample GEMM per layer: every sample's receptive fields are
  // unrolled into a single [N*ho*wo, cin*k*k] slab and multiplied against
  // W^T in one call, so the packed W panel is amortized over the whole
  // batch and the GEMM parallelizes over N*ho*wo rows instead of running
  // inline per sample. Element dot products accumulate over the same
  // ascending-k order as the per-sample GEMM, so results are bit-identical
  // to it (and across thread counts — the dispatch below may pick either
  // path without changing a bit). The batched orientation pays a
  // [ho*wo, cout] -> [cout, ho*wo] scatter per sample, so it is used when
  // the per-sample loop cannot feed the pool (fewer samples than
  // threads); with enough samples the sample-parallel loop keeps the old
  // transpose-free layout. Oversized batches always take the per-sample
  // loop instead of growing the arena past the slab cap.
  const int64_t col_elems = n * how * ckk;
  // Live scratch of this path: col_all + yt.
  if (n < core::num_threads() &&
      (col_elems + n * how * cout_) *
              static_cast<int64_t>(sizeof(float)) <=
          kMaxBatchedScratchBytes) {
    core::Scratch<float> col_all(col_elems);
    float* colp = col_all.data();
    core::parallel_for(0, n, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t in = lo; in < hi; ++in)
        im2col(xp + in * cin_ * h * w, cin_, h, w, k_, stride_, pad_, ho, wo,
               colp + in * how * ckk);
    });
    // yt [N*ho*wo, cout] = col_all @ W^T, then scatter each sample's
    // [ho*wo, cout] block into the [cout, ho*wo] output layout.
    core::Scratch<float> yt(n * how * cout_);
    tensor::gemm_nt(colp, wp, yt.data(), n * how, ckk, cout_);
    const float* ytp = yt.data();
    core::parallel_for(0, n, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t in = lo; in < hi; ++in)
        transpose_to_chw(ytp + in * how * cout_, how, cout_,
                         yp + in * cout_ * how);
    });
    return y;
  }

  // Fallback: im2col + GEMM per sample; samples fan out to the pool, the
  // GEMM inside a worker runs inline (nested parallel regions are serial).
  core::parallel_for(0, n, 1, [&](int64_t lo, int64_t hi) {
    core::Scratch<float> col(how * ckk);
    for (int64_t in = lo; in < hi; ++in) {
      im2col(xp + in * cin_ * h * w, cin_, h, w, k_, stride_, pad_, ho, wo,
             col.data());
      // y_n [cout, ho*wo] = W [cout, ckk] @ col^T (col stored [ho*wo, ckk])
      tensor::gemm_nt(wp, col.data(), yp + in * cout_ * how, cout_, ckk, how);
    }
  });
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  COMDML_CHECK(!cached_input_.empty());
  const Tensor& x = cached_input_;
  const int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int64_t ho = out_extent(h), wo = out_extent(w);
  COMDML_REQUIRE(grad_out.rank() == 4 && grad_out.dim(0) == n &&
                     grad_out.dim(1) == cout_ && grad_out.dim(2) == ho &&
                     grad_out.dim(3) == wo,
                 "conv backward: bad grad shape "
                     << tensor::shape_str(grad_out.shape()));

  Tensor dx(x.shape());
  const int64_t how = ho * wo;
  const int64_t ckk = cin_ * k_ * k_;
  // weight is [cout, cin, k, k] row-major == [cout, ckk] flattened.
  const float* wp = weight_.value.flat().data();
  const float* xp = x.flat().data();
  const float* gp = grad_out.flat().data();
  float* dxp = dx.flat().data();

  // Batched: with G gathered into GEMM layout gt [N*ho*wo, cout] and all
  // receptive fields in col_all [N*ho*wo, cin*k*k],
  //   dW  = gt^T @ col_all   (one gemm_tn folds the cross-sample reduction
  //                           into the ascending-k accumulation — no
  //                           per-sample partial slabs or serial merge)
  //   dcol = gt @ W          (one gemm_nn over every sample)
  // then dx_n = col2im(dcol_n) per sample. Both GEMMs accumulate each
  // output element over ascending k independent of the row partition, so
  // the result is bit-identical at every thread count.
  const int64_t col_elems = n * how * ckk;
  float* dwp = weight_.grad.flat().data();
  // Peak live scratch of this path: col_all + gt + dcol_all together.
  if ((2 * col_elems + n * how * cout_) *
          static_cast<int64_t>(sizeof(float)) <=
      kMaxBatchedScratchBytes) {
    core::Scratch<float> col_all(col_elems);
    core::Scratch<float> gt(n * how * cout_);
    float* colp = col_all.data();
    float* gtp = gt.data();
    core::parallel_for(0, n, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t in = lo; in < hi; ++in) {
        im2col(xp + in * cin_ * h * w, cin_, h, w, k_, stride_, pad_, ho, wo,
               colp + in * how * ckk);
        transpose_to_hwc(gp + in * cout_ * how, cout_, how,
                         gtp + in * how * cout_);
      }
    });
    tensor::gemm_tn(gtp, colp, dwp, cout_, n * how, ckk,
                    /*accumulate=*/true);  // dW [cout, cin*k*k]
    core::Scratch<float> dcol_all(col_elems);
    float* dcolp = dcol_all.data();
    tensor::gemm_nn(gtp, wp, dcolp, n * how, cout_,
                    ckk);  // dcol [N*ho*wo, cin*k*k]
    core::parallel_for(0, n, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t in = lo; in < hi; ++in)
        col2im(dcolp + in * how * ckk, cin_, h, w, k_, stride_, pad_, ho, wo,
               dxp + in * cin_ * h * w);
    });
    return dx;
  }

  // Fallback (oversized batch): per-sample dW_n = G_n @ col_n,
  // dcol_n = G_n^T @ W, dx_n = col2im(dcol). dx rows are disjoint across
  // samples; per-sample dW partials land in disjoint slices of one arena
  // slab and are reduced serially in sample order afterwards, so the
  // accumulation is independent of the thread count.
  core::Scratch<float> dw_all(n * cout_ * ckk);
  float* dw_all_p = dw_all.data();
  core::parallel_for(0, n, 1, [&](int64_t lo, int64_t hi) {
    core::Scratch<float> col(how * ckk);
    core::Scratch<float> dcol(how * ckk);
    for (int64_t in = lo; in < hi; ++in) {
      im2col(xp + in * cin_ * h * w, cin_, h, w, k_, stride_, pad_, ho, wo,
             col.data());
      const float* gm = gp + in * cout_ * how;  // [cout, ho*wo]
      tensor::gemm_nn(gm, col.data(), dw_all_p + in * cout_ * ckk, cout_,
                      how, ckk);  // dW_n [cout, cin*k*k]
      tensor::gemm_tn(gm, wp, dcol.data(), how, cout_,
                      ckk);  // dcol [ho*wo, cin*k*k]
      col2im(dcol.data(), cin_, h, w, k_, stride_, pad_, ho, wo,
             dxp + in * cin_ * h * w);
    }
  });
  for (int64_t in = 0; in < n; ++in) {
    const float* src = dw_all_p + in * cout_ * ckk;
    for (int64_t i = 0; i < cout_ * ckk; ++i) dwp[i] += src[i];
  }
  return dx;
}

Tensor conv2d_reference_forward(const Tensor& x, const Tensor& w,
                                int64_t stride, int64_t padding) {
  COMDML_REQUIRE(x.rank() == 4 && w.rank() == 4 && x.dim(1) == w.dim(1),
                 "conv reference: bad shapes "
                     << tensor::shape_str(x.shape()) << " * "
                     << tensor::shape_str(w.shape()));
  const int64_t n = x.dim(0), cin = x.dim(1), h = x.dim(2), ww = x.dim(3);
  const int64_t cout = w.dim(0), k = w.dim(2);
  const int64_t ho = (h + 2 * padding - k) / stride + 1;
  const int64_t wo = (ww + 2 * padding - k) / stride + 1;
  COMDML_REQUIRE(ho > 0 && wo > 0, "conv reference: input too small");
  Tensor y({n, cout, ho, wo});
  const float* xp = x.flat().data();
  const float* wp = w.flat().data();
  float* yp = y.flat().data();
  for (int64_t in = 0; in < n; ++in) {
    for (int64_t co = 0; co < cout; ++co) {
      for (int64_t oy = 0; oy < ho; ++oy) {
        for (int64_t ox = 0; ox < wo; ++ox) {
          double acc = 0.0;
          const int64_t iy0 = oy * stride - padding;
          const int64_t ix0 = ox * stride - padding;
          for (int64_t ci = 0; ci < cin; ++ci) {
            const float* xc = xp + ((in * cin + ci) * h) * ww;
            const float* wc = wp + ((co * cin + ci) * k) * k;
            for (int64_t ky = 0; ky < k; ++ky) {
              const int64_t iy = iy0 + ky;
              if (iy < 0 || iy >= h) continue;
              for (int64_t kx = 0; kx < k; ++kx) {
                const int64_t ix = ix0 + kx;
                if (ix < 0 || ix >= ww) continue;
                acc += double(xc[iy * ww + ix]) * wc[ky * k + kx];
              }
            }
          }
          yp[((in * cout + co) * ho + oy) * wo + ox] =
              static_cast<float>(acc);
        }
      }
    }
  }
  return y;
}

Tensor conv2d_reference_backward(const Tensor& x, const Tensor& w,
                                 const Tensor& grad_out, int64_t stride,
                                 int64_t padding, Tensor& dw) {
  COMDML_REQUIRE(x.rank() == 4 && w.rank() == 4 && grad_out.rank() == 4 &&
                     dw.shape() == w.shape(),
                 "conv reference backward: bad shapes");
  const int64_t n = x.dim(0), cin = x.dim(1), h = x.dim(2), ww = x.dim(3);
  const int64_t cout = w.dim(0), k = w.dim(2);
  const int64_t ho = grad_out.dim(2), wo = grad_out.dim(3);
  Tensor dx(x.shape());
  const float* xp = x.flat().data();
  const float* wp = w.flat().data();
  const float* gp = grad_out.flat().data();
  float* dxp = dx.flat().data();
  float* dwp = dw.flat().data();
  for (int64_t in = 0; in < n; ++in) {
    for (int64_t co = 0; co < cout; ++co) {
      const float* gc = gp + ((in * cout + co) * ho) * wo;
      for (int64_t oy = 0; oy < ho; ++oy) {
        for (int64_t ox = 0; ox < wo; ++ox) {
          const float g = gc[oy * wo + ox];
          if (g == 0.0f) continue;
          const int64_t iy0 = oy * stride - padding;
          const int64_t ix0 = ox * stride - padding;
          for (int64_t ci = 0; ci < cin; ++ci) {
            const float* xc = xp + ((in * cin + ci) * h) * ww;
            float* dxc = dxp + ((in * cin + ci) * h) * ww;
            const float* wc = wp + ((co * cin + ci) * k) * k;
            float* dwc = dwp + ((co * cin + ci) * k) * k;
            for (int64_t ky = 0; ky < k; ++ky) {
              const int64_t iy = iy0 + ky;
              if (iy < 0 || iy >= h) continue;
              for (int64_t kx = 0; kx < k; ++kx) {
                const int64_t ix = ix0 + kx;
                if (ix < 0 || ix >= ww) continue;
                dwc[ky * k + kx] += g * xc[iy * ww + ix];
                dxc[iy * ww + ix] += g * wc[ky * k + kx];
              }
            }
          }
        }
      }
    }
  }
  return dx;
}

void Conv2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
}

LayerCost Conv2d::cost(const Shape& in_shape) const {
  COMDML_REQUIRE(in_shape.size() == 3 && in_shape[0] == cin_,
                 "conv cost: expected [" << cin_ << ",H,W]");
  const int64_t ho = out_extent(in_shape[1]), wo = out_extent(in_shape[2]);
  LayerCost c;
  c.flops_forward = 2.0 * double(k_ * k_) * double(cin_) * double(cout_) *
                    double(ho) * double(wo);
  c.flops_backward = 2.0 * c.flops_forward;  // dX pass + dW pass
  c.param_bytes =
      cout_ * cin_ * k_ * k_ * static_cast<int64_t>(sizeof(float));
  c.out_bytes = cout_ * ho * wo * static_cast<int64_t>(sizeof(float));
  c.out_shape = {cout_, ho, wo};
  return c;
}

}  // namespace comdml::nn
