#include "nn/conv.hpp"

#include <sstream>

namespace comdml::nn {

Conv2d::Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
               int64_t stride, int64_t padding, Rng& rng)
    : cin_(in_channels),
      cout_(out_channels),
      k_(kernel),
      stride_(stride),
      pad_(padding),
      weight_("conv.weight",
              rng.he_normal({out_channels, in_channels, kernel, kernel},
                            in_channels * kernel * kernel)) {
  COMDML_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 &&
               stride > 0 && padding >= 0);
}

std::string Conv2d::kind() const {
  std::ostringstream os;
  os << "conv" << k_ << "x" << k_;
  return os.str();
}

Tensor Conv2d::forward(const Tensor& x, bool /*train*/) {
  COMDML_REQUIRE(x.rank() == 4 && x.dim(1) == cin_,
                 "conv: expected [N," << cin_ << ",H,W], got "
                                      << tensor::shape_str(x.shape()));
  cached_input_ = x;
  const int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int64_t ho = out_extent(h), wo = out_extent(w);
  COMDML_REQUIRE(ho > 0 && wo > 0, "conv: input " << h << "x" << w
                                                  << " too small for kernel");
  Tensor y({n, cout_, ho, wo});
  const float* xp = x.flat().data();
  const float* wp = weight_.value.flat().data();
  float* yp = y.flat().data();

  for (int64_t in = 0; in < n; ++in) {
    for (int64_t co = 0; co < cout_; ++co) {
      for (int64_t oy = 0; oy < ho; ++oy) {
        for (int64_t ox = 0; ox < wo; ++ox) {
          double acc = 0.0;
          const int64_t iy0 = oy * stride_ - pad_;
          const int64_t ix0 = ox * stride_ - pad_;
          for (int64_t ci = 0; ci < cin_; ++ci) {
            const float* xc = xp + ((in * cin_ + ci) * h) * w;
            const float* wc = wp + ((co * cin_ + ci) * k_) * k_;
            for (int64_t ky = 0; ky < k_; ++ky) {
              const int64_t iy = iy0 + ky;
              if (iy < 0 || iy >= h) continue;
              for (int64_t kx = 0; kx < k_; ++kx) {
                const int64_t ix = ix0 + kx;
                if (ix < 0 || ix >= w) continue;
                acc += double(xc[iy * w + ix]) * wc[ky * k_ + kx];
              }
            }
          }
          yp[((in * cout_ + co) * ho + oy) * wo + ox] =
              static_cast<float>(acc);
        }
      }
    }
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  COMDML_CHECK(!cached_input_.empty());
  const Tensor& x = cached_input_;
  const int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int64_t ho = out_extent(h), wo = out_extent(w);
  COMDML_REQUIRE(grad_out.rank() == 4 && grad_out.dim(0) == n &&
                     grad_out.dim(1) == cout_ && grad_out.dim(2) == ho &&
                     grad_out.dim(3) == wo,
                 "conv backward: bad grad shape "
                     << tensor::shape_str(grad_out.shape()));

  Tensor dx(x.shape());
  const float* xp = x.flat().data();
  const float* wp = weight_.value.flat().data();
  const float* gp = grad_out.flat().data();
  float* dxp = dx.flat().data();
  float* dwp = weight_.grad.flat().data();

  for (int64_t in = 0; in < n; ++in) {
    for (int64_t co = 0; co < cout_; ++co) {
      const float* gc = gp + ((in * cout_ + co) * ho) * wo;
      for (int64_t oy = 0; oy < ho; ++oy) {
        for (int64_t ox = 0; ox < wo; ++ox) {
          const float g = gc[oy * wo + ox];
          if (g == 0.0f) continue;
          const int64_t iy0 = oy * stride_ - pad_;
          const int64_t ix0 = ox * stride_ - pad_;
          for (int64_t ci = 0; ci < cin_; ++ci) {
            const float* xc = xp + ((in * cin_ + ci) * h) * w;
            float* dxc = dxp + ((in * cin_ + ci) * h) * w;
            const float* wc = wp + ((co * cin_ + ci) * k_) * k_;
            float* dwc = dwp + ((co * cin_ + ci) * k_) * k_;
            for (int64_t ky = 0; ky < k_; ++ky) {
              const int64_t iy = iy0 + ky;
              if (iy < 0 || iy >= h) continue;
              for (int64_t kx = 0; kx < k_; ++kx) {
                const int64_t ix = ix0 + kx;
                if (ix < 0 || ix >= w) continue;
                dwc[ky * k_ + kx] += g * xc[iy * w + ix];
                dxc[iy * w + ix] += g * wc[ky * k_ + kx];
              }
            }
          }
        }
      }
    }
  }
  return dx;
}

void Conv2d::collect_parameters(std::vector<Parameter*>& out) {
  out.push_back(&weight_);
}

LayerCost Conv2d::cost(const Shape& in_shape) const {
  COMDML_REQUIRE(in_shape.size() == 3 && in_shape[0] == cin_,
                 "conv cost: expected [" << cin_ << ",H,W]");
  const int64_t ho = out_extent(in_shape[1]), wo = out_extent(in_shape[2]);
  LayerCost c;
  c.flops_forward = 2.0 * double(k_ * k_) * double(cin_) * double(cout_) *
                    double(ho) * double(wo);
  c.flops_backward = 2.0 * c.flops_forward;  // dX pass + dW pass
  c.param_bytes =
      cout_ * cin_ * k_ * k_ * static_cast<int64_t>(sizeof(float));
  c.out_bytes = cout_ * ho * wo * static_cast<int64_t>(sizeof(float));
  c.out_shape = {cout_, ho, wo};
  return c;
}

}  // namespace comdml::nn
