// 2-D convolution (NCHW, square kernel, zero padding, no bias — ResNet style).
//
// Forward and backward run as im2col + GEMM so convolution rides the
// cache-blocked, thread-parallel matmul kernels; samples are additionally
// processed in parallel. The direct naive kernels are kept as
// conv2d_reference_* for parity tests and benchmark baselines.
#pragma once

#include "nn/module.hpp"

namespace comdml::nn {

/// Direct (non-im2col) convolution: x [N,cin,H,W] * w [cout,cin,k,k].
[[nodiscard]] Tensor conv2d_reference_forward(const Tensor& x,
                                              const Tensor& w, int64_t stride,
                                              int64_t padding);

/// Direct backward pass. Returns dx; accumulates into `dw` (shape of w).
[[nodiscard]] Tensor conv2d_reference_backward(const Tensor& x,
                                               const Tensor& w,
                                               const Tensor& grad_out,
                                               int64_t stride, int64_t padding,
                                               Tensor& dw);

class Conv2d : public Module {
 public:
  /// kernel k x k, stride s, symmetric zero padding p.
  Conv2d(int64_t in_channels, int64_t out_channels, int64_t kernel,
         int64_t stride, int64_t padding, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  [[nodiscard]] LayerCost cost(const Shape& in_shape) const override;
  [[nodiscard]] std::string kind() const override;

  [[nodiscard]] int64_t in_channels() const noexcept { return cin_; }
  [[nodiscard]] int64_t out_channels() const noexcept { return cout_; }

  /// Output spatial extent for an input extent under this conv's geometry.
  [[nodiscard]] int64_t out_extent(int64_t in) const {
    return (in + 2 * pad_ - k_) / stride_ + 1;
  }

 private:
  int64_t cin_, cout_, k_, stride_, pad_;
  Parameter weight_;  ///< [cout, cin, k, k]
  Tensor cached_input_;
};

}  // namespace comdml::nn
