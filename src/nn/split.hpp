// Local-loss-based split training (paper §III-B).
//
// The global model w = (w_s^m, w_f^m) is cut at unit boundary `cut`:
// the slow agent trains units [0, cut) plus an auxiliary head that supplies
// the local loss; the fast agent trains units [cut, end) on the slow side's
// intermediate activations. No gradient crosses the cut, so both sides
// update in parallel (paper Eqs. 2-3).
#pragma once

#include <functional>
#include <span>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "nn/resnet.hpp"

namespace comdml::nn {

/// Auxiliary network for a slow-side output of shape `feat_shape`
/// (per-sample): global-average-pool + fully-connected for conv feature
/// maps, plain fully-connected for flat features (paper §III-B / [4], [15]).
[[nodiscard]] ModulePtr make_aux_head(const Shape& feat_shape,
                                      int64_t classes, Rng& rng);

/// Trains one (slow, fast) split of a shared Sequential with local losses.
/// The same object serves both the real execution mode of the ComDML trainer
/// and the convergence tests.
class LocalLossSplitTrainer {
 public:
  /// `model` must outlive the trainer. `cut` in [1, model.size()-1]:
  /// at least one unit on each side.
  LocalLossSplitTrainer(Sequential& model, size_t cut, const Shape& in_shape,
                        int64_t classes, Rng& rng, SGD::Options options);

  struct StepStats {
    float slow_loss = 0.0f;   ///< auxiliary-head local loss (Eq. 2)
    float fast_loss = 0.0f;   ///< fast-side loss on intermediate input (Eq. 3)
    float fast_accuracy = 0.0f;
    int64_t intermediate_bytes = 0;  ///< activation payload crossing the cut
  };

  /// One parallel update on a batch: slow side w/ aux head, fast side on the
  /// detached intermediate activations.
  StepStats train_batch(const Tensor& x, std::span<const int64_t> labels);

  /// train_batch with per-unit finalization across both sides (the split
  /// counterpart of nn::train_batch_full_notify): every model unit takes
  /// its optimizer update the moment its backward completes, then
  /// `on_unit_final(u)` fires — unit u's state will not change again this
  /// batch. Slow prefix units finalize during the slow-side backward
  /// (reverse from cut-1 to 0, before the fast side even starts), fast
  /// suffix units during the fast-side backward (reverse from size-1 to
  /// cut) — so a fleet can publish the slow replica's buckets
  /// layer-by-layer while the split tail still computes, instead of at
  /// task end. `unit_param_counts` must list every model unit's
  /// learnable-parameter count (nn::BucketPlan::unit_param_counts()).
  /// Bit-identical to train_batch: per-parameter SGD math is
  /// order-independent, and the aux head's update never feeds the
  /// remaining backward.
  StepStats train_batch_notify(const Tensor& x,
                               std::span<const int64_t> labels,
                               std::span<const size_t> unit_param_counts,
                               const std::function<void(size_t)>& on_unit_final);

  /// Full-model inference (slow prefix + fast suffix), evaluation mode.
  [[nodiscard]] Tensor infer(const Tensor& x);

  [[nodiscard]] size_t cut() const noexcept { return cut_; }
  [[nodiscard]] Module& aux_head() { return *aux_; }
  [[nodiscard]] SGD& slow_optimizer() { return slow_opt_; }
  [[nodiscard]] SGD& fast_optimizer() { return fast_opt_; }

 private:
  Sequential& model_;
  size_t cut_;
  ModulePtr aux_;
  SGD slow_opt_;
  SGD fast_opt_;
};

/// One conventional (non-split) SGD step on a full model; shared by the
/// baselines. Returns (loss, accuracy).
[[nodiscard]] LossResult train_batch_full(Sequential& model, SGD& opt,
                                          const Tensor& x,
                                          std::span<const int64_t> labels);

/// Called as unit `u`'s state becomes final during a notifying step.
using UnitFinalFn = std::function<void(size_t unit)>;

/// train_batch_full with per-unit finalization: backward walks units in
/// reverse, and each unit's parameters take their optimizer update the
/// moment its backward completes, after which `on_unit_final(u)` fires —
/// unit u's state (params + buffers) will not change again this batch.
/// `opt` must have been constructed over exactly model.parameters() and
/// `unit_param_counts` must list each unit's learnable-parameter count
/// (nn::BucketPlan::unit_param_counts()). Bit-identical to
/// train_batch_full: per-parameter SGD math is order-independent.
[[nodiscard]] LossResult train_batch_full_notify(
    Sequential& model, SGD& opt, const Tensor& x,
    std::span<const int64_t> labels,
    std::span<const size_t> unit_param_counts,
    const UnitFinalFn& on_unit_final);

/// Mean argmax accuracy of `model` on (x, labels), evaluation mode.
[[nodiscard]] float evaluate_accuracy(Sequential& model, const Tensor& x,
                                      std::span<const int64_t> labels);

}  // namespace comdml::nn
