#include "nn/split.hpp"

namespace comdml::nn {

ModulePtr make_aux_head(const Shape& feat_shape, int64_t classes, Rng& rng) {
  COMDML_CHECK(classes > 1);
  auto head = std::make_unique<Sequential>();
  if (feat_shape.size() == 3) {  // [C,H,W] conv feature map
    head->push(std::make_unique<GlobalAvgPool2d>());
    head->push(std::make_unique<Linear>(feat_shape[0], classes, rng));
  } else if (feat_shape.size() == 1) {  // flat features
    head->push(std::make_unique<Linear>(feat_shape[0], classes, rng));
  } else {
    COMDML_REQUIRE(false, "aux head: unsupported feature shape "
                              << tensor::shape_str(feat_shape));
  }
  return head;
}

namespace {

std::vector<Parameter*> range_parameters(Sequential& model, size_t begin,
                                         size_t end) {
  std::vector<Parameter*> out;
  for (size_t i = begin; i < end; ++i) model.unit(i).collect_parameters(out);
  return out;
}

std::vector<Parameter*> with_aux(std::vector<Parameter*> params, Module& aux) {
  aux.collect_parameters(params);
  return params;
}

Shape feature_shape_at(const Sequential& model, const Shape& in_shape,
                       size_t cut) {
  const auto costs = model.unit_costs(in_shape);
  COMDML_CHECK(cut >= 1 && cut <= costs.size());
  return costs[cut - 1].out_shape;
}

}  // namespace

LocalLossSplitTrainer::LocalLossSplitTrainer(Sequential& model, size_t cut,
                                             const Shape& in_shape,
                                             int64_t classes, Rng& rng,
                                             SGD::Options options)
    : model_(model),
      cut_(cut),
      aux_(make_aux_head(feature_shape_at(model, in_shape, cut), classes,
                         rng)),
      slow_opt_(with_aux(range_parameters(model, 0, cut), *aux_), options),
      fast_opt_(range_parameters(model, cut, model.size()), options) {
  COMDML_REQUIRE(cut >= 1 && cut < model.size(),
                 "split cut " << cut << " must leave at least one unit on "
                                 "each side of a model with "
                              << model.size() << " units");
}

LocalLossSplitTrainer::StepStats LocalLossSplitTrainer::train_batch(
    const Tensor& x, std::span<const int64_t> labels) {
  StepStats stats;

  // Slow side: prefix forward, auxiliary local loss, prefix backward.
  slow_opt_.zero_grad();
  const Tensor h = model_.forward_range(x, 0, cut_, /*train=*/true);
  stats.intermediate_bytes = h.nbytes();
  const Tensor aux_logits = aux_->forward(h, /*train=*/true);
  const LossResult slow = softmax_cross_entropy(aux_logits, labels);
  stats.slow_loss = slow.loss;
  const Tensor dh = aux_->backward(slow.grad_logits);
  (void)model_.backward_range(dh, 0, cut_);
  slow_opt_.step();

  // Fast side: consumes h as a detached input (no gradient crosses the cut).
  fast_opt_.zero_grad();
  const Tensor logits =
      model_.forward_range(h, cut_, model_.size(), /*train=*/true);
  const LossResult fast = softmax_cross_entropy(logits, labels);
  stats.fast_loss = fast.loss;
  stats.fast_accuracy = fast.accuracy;
  (void)model_.backward_range(fast.grad_logits, cut_, model_.size());
  fast_opt_.step();

  return stats;
}

LocalLossSplitTrainer::StepStats LocalLossSplitTrainer::train_batch_notify(
    const Tensor& x, std::span<const int64_t> labels,
    std::span<const size_t> unit_param_counts,
    const std::function<void(size_t)>& on_unit_final) {
  COMDML_CHECK(unit_param_counts.size() == model_.size());
  StepStats stats;

  // Slow side. The aux head steps right after its own backward (its grads
  // are final and nothing downstream reads its weights this batch), then
  // the prefix backward walks units in reverse, stepping + finalizing each
  // one: unit u's parameter range of slow_opt_ ends at the running prefix
  // sum of unit_param_counts[0..u].
  slow_opt_.zero_grad();
  const Tensor h = model_.forward_range(x, 0, cut_, /*train=*/true);
  stats.intermediate_bytes = h.nbytes();
  const Tensor aux_logits = aux_->forward(h, /*train=*/true);
  const LossResult slow = softmax_cross_entropy(aux_logits, labels);
  stats.slow_loss = slow.loss;
  Tensor grad = aux_->backward(slow.grad_logits);
  size_t prefix_params = 0;
  for (size_t u = 0; u < cut_; ++u) prefix_params += unit_param_counts[u];
  COMDML_CHECK(prefix_params <= slow_opt_.size());
  slow_opt_.step_range(prefix_params, slow_opt_.size() - prefix_params);
  size_t param_end = prefix_params;
  for (size_t u = cut_; u-- > 0;) {
    grad = model_.unit(u).backward(grad);
    const size_t count = unit_param_counts[u];
    COMDML_CHECK(param_end >= count);
    param_end -= count;
    if (count > 0) slow_opt_.step_range(param_end, count);
    if (on_unit_final) on_unit_final(u);
  }
  COMDML_CHECK(param_end == 0);

  // Fast side: consumes h as a detached input (no gradient crosses the
  // cut); suffix units finalize in reverse as their backward completes.
  fast_opt_.zero_grad();
  const Tensor logits =
      model_.forward_range(h, cut_, model_.size(), /*train=*/true);
  const LossResult fast = softmax_cross_entropy(logits, labels);
  stats.fast_loss = fast.loss;
  stats.fast_accuracy = fast.accuracy;
  grad = fast.grad_logits;
  param_end = fast_opt_.size();
  for (size_t u = model_.size(); u-- > cut_;) {
    grad = model_.unit(u).backward(grad);
    const size_t count = unit_param_counts[u];
    COMDML_CHECK(param_end >= count);
    param_end -= count;
    if (count > 0) fast_opt_.step_range(param_end, count);
    if (on_unit_final) on_unit_final(u);
  }
  COMDML_CHECK(param_end == 0);

  return stats;
}

Tensor LocalLossSplitTrainer::infer(const Tensor& x) {
  return model_.forward_range(x, 0, model_.size(), /*train=*/false);
}

LossResult train_batch_full(Sequential& model, SGD& opt, const Tensor& x,
                            std::span<const int64_t> labels) {
  opt.zero_grad();
  const Tensor logits = model.forward(x, /*train=*/true);
  LossResult res = softmax_cross_entropy(logits, labels);
  (void)model.backward(res.grad_logits);
  opt.step();
  return res;
}

LossResult train_batch_full_notify(Sequential& model, SGD& opt,
                                   const Tensor& x,
                                   std::span<const int64_t> labels,
                                   std::span<const size_t> unit_param_counts,
                                   const UnitFinalFn& on_unit_final) {
  COMDML_CHECK(unit_param_counts.size() == model.size());
  opt.zero_grad();
  const Tensor logits = model.forward(x, /*train=*/true);
  LossResult res = softmax_cross_entropy(logits, labels);
  // Backward in reverse unit order, stepping each unit's parameter range
  // as its backward completes. Suffix sums give each unit's offset into
  // the optimizer's parameter list.
  size_t param_end = opt.size();
  Tensor grad = res.grad_logits;
  for (size_t u = model.size(); u-- > 0;) {
    grad = model.unit(u).backward(grad);
    const size_t count = unit_param_counts[u];
    COMDML_CHECK(param_end >= count);
    param_end -= count;
    if (count > 0) opt.step_range(param_end, count);
    if (on_unit_final) on_unit_final(u);
  }
  COMDML_CHECK(param_end == 0);
  return res;
}

float evaluate_accuracy(Sequential& model, const Tensor& x,
                        std::span<const int64_t> labels) {
  const Tensor logits = model.forward(x, /*train=*/false);
  const auto preds = tensor::argmax_rows(logits);
  COMDML_CHECK(preds.size() == labels.size());
  int64_t correct = 0;
  for (size_t i = 0; i < preds.size(); ++i)
    if (preds[i] == labels[i]) ++correct;
  return static_cast<float>(correct) / static_cast<float>(preds.size());
}

}  // namespace comdml::nn
