// Additional layers beyond the ResNet set: max pooling, dropout and layer
// normalization — enough to assemble the MLP-to-transformer-style models
// the paper names as supported workloads (§V-A "from MLPs and CNNs to
// LLMs").
#pragma once

#include "nn/module.hpp"

namespace comdml::nn {

/// Non-overlapping k x k max pooling on NCHW input (H, W divisible by k).
class MaxPool2d : public Module {
 public:
  explicit MaxPool2d(int64_t kernel);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] LayerCost cost(const Shape& in_shape) const override;
  [[nodiscard]] std::string kind() const override { return "maxpool"; }

 private:
  int64_t k_;
  Shape cached_in_shape_;
  std::vector<int64_t> cached_argmax_;  ///< flat input index per output
};

/// Inverted dropout: active only in training mode; eval is the identity.
class Dropout : public Module {
 public:
  Dropout(float rate, uint64_t seed);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] LayerCost cost(const Shape& in_shape) const override;
  [[nodiscard]] std::string kind() const override { return "dropout"; }

 private:
  float rate_;
  Rng rng_;
  Tensor cached_mask_;
  bool last_was_training_ = false;
};

/// Layer normalization over the last axis of [N, F] inputs with learnable
/// gain/bias (transformer-style).
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t features, float eps = 1e-5f);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void collect_parameters(std::vector<Parameter*>& out) override;
  [[nodiscard]] LayerCost cost(const Shape& in_shape) const override;
  [[nodiscard]] std::string kind() const override { return "layernorm"; }

 private:
  int64_t features_;
  float eps_;
  Parameter gain_;
  Parameter bias_;
  Tensor cached_xhat_;
  Tensor cached_inv_std_;  ///< [N]
};

}  // namespace comdml::nn
