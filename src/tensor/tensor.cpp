#include "tensor/tensor.hpp"

#include <numeric>
#include <sstream>

namespace comdml::tensor {

int64_t shape_size(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) {
    COMDML_REQUIRE(d >= 0, "negative extent in shape " << shape_str(shape));
    n *= d;
  }
  return n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i != 0) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(shape_size(shape_)), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(shape_size(shape_)), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  COMDML_REQUIRE(static_cast<int64_t>(data_.size()) == shape_size(shape_),
                 "data size " << data_.size() << " does not match shape "
                              << shape_str(shape_));
}

Tensor Tensor::of(std::initializer_list<float> values) {
  return Tensor({static_cast<int64_t>(values.size())},
                std::vector<float>(values));
}

Tensor Tensor::scalar(float value) { return Tensor({1}, {value}); }

int64_t Tensor::dim(size_t axis) const {
  COMDML_REQUIRE(axis < shape_.size(),
                 "axis " << axis << " out of range for " << shape_str(shape_));
  return shape_[axis];
}

int64_t Tensor::offset(std::initializer_list<int64_t> idx) const {
  COMDML_REQUIRE(idx.size() == shape_.size(),
                 "index rank " << idx.size() << " vs tensor rank "
                               << shape_.size());
  int64_t off = 0;
  size_t axis = 0;
  for (int64_t i : idx) {
    COMDML_REQUIRE(i >= 0 && i < shape_[axis],
                   "index " << i << " out of bounds on axis " << axis
                            << " of " << shape_str(shape_));
    off = off * shape_[axis] + i;
    ++axis;
  }
  return off;
}

float& Tensor::at(std::initializer_list<int64_t> idx) {
  return data_[static_cast<size_t>(offset(idx))];
}

float Tensor::at(std::initializer_list<int64_t> idx) const {
  return data_[static_cast<size_t>(offset(idx))];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  COMDML_REQUIRE(shape_size(new_shape) == size(),
                 "reshape " << shape_str(shape_) << " -> "
                            << shape_str(new_shape) << " changes size");
  Tensor out;
  out.shape_ = std::move(new_shape);
  out.data_ = data_;
  return out;
}

void Tensor::resize(Shape new_shape) {
  const int64_t n = shape_size(new_shape);
  shape_ = std::move(new_shape);
  data_.resize(static_cast<size_t>(n));
}

void Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
}

}  // namespace comdml::tensor
