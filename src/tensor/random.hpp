// Deterministic random number generation for the whole library.
//
// Every stochastic component takes an explicit Rng (or seed); nothing reads
// global entropy, so all tests, examples and benches are reproducible.
#pragma once

#include <cstdint>
#include <random>
#include <string>

#include "tensor/tensor.hpp"

namespace comdml::tensor {

/// Thin seedable wrapper around std::mt19937_64 with tensor-filling helpers.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform in [lo, hi).
  [[nodiscard]] float uniform(float lo = 0.0f, float hi = 1.0f);

  /// Standard normal times `stddev`, shifted by `mean`.
  [[nodiscard]] float normal(float mean = 0.0f, float stddev = 1.0f);

  /// Uniform integer in [0, n). Requires n > 0.
  [[nodiscard]] int64_t below(int64_t n);

  /// Laplace(0, scale) sample (used by the DP mechanism).
  [[nodiscard]] float laplace(float scale);

  /// Sample from a Dirichlet distribution with symmetric concentration
  /// `alpha` over `k` categories.
  [[nodiscard]] std::vector<double> dirichlet(double alpha, size_t k);

  /// Fisher-Yates shuffle of an index vector.
  void shuffle(std::vector<int64_t>& v);

  [[nodiscard]] Tensor normal_tensor(Shape shape, float mean, float stddev);
  [[nodiscard]] Tensor uniform_tensor(Shape shape, float lo, float hi);

  /// Kaiming/He normal initialisation: stddev = sqrt(2 / fan_in).
  [[nodiscard]] Tensor he_normal(Shape shape, int64_t fan_in);

  /// Derive an independent child generator (stable split for per-agent RNGs).
  [[nodiscard]] Rng fork();

  /// Full engine state as text (std::mt19937_64 stream format) — resuming
  /// from it continues the exact draw sequence. Distributions are built
  /// fresh per call, so the engine is the only state worth saving.
  [[nodiscard]] std::string state() const;
  void set_state(const std::string& s);

  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace comdml::tensor
