// Byte-level (de)serialization of tensors and parameter sets.
//
// Used by the communication substrate so that "sending a model" moves real
// bytes whose count matches what the timing model charges for.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace comdml::tensor {

/// Serialized wire format: [rank u32][dims i64...][payload f32...].
[[nodiscard]] std::vector<uint8_t> to_bytes(const Tensor& t);

/// Parse one tensor from `bytes` starting at `offset`; advances `offset`.
/// Throws std::invalid_argument on truncated or malformed input.
[[nodiscard]] Tensor from_bytes(const std::vector<uint8_t>& bytes,
                                size_t& offset);

/// Serialize a whole parameter list (e.g. a model snapshot).
[[nodiscard]] std::vector<uint8_t> pack_tensors(const std::vector<Tensor>& ts);

/// Inverse of pack_tensors.
[[nodiscard]] std::vector<Tensor> unpack_tensors(
    const std::vector<uint8_t>& bytes);

/// Total payload bytes a tensor list occupies on the wire.
[[nodiscard]] int64_t wire_bytes(const std::vector<Tensor>& ts);

/// FNV-1a over a byte range. Shared by the transport's per-message payload
/// checksums and the checkpoint blob integrity check — fast, seedless, and
/// stable across platforms for same-width input.
[[nodiscard]] uint64_t fnv1a(const void* data, size_t n);

// ---- durable-state byte streams ---------------------------------------------

/// Append-only byte stream for durable state (fleet checkpoints). Scalars
/// are fixed-width native-endian — the checkpoint format targets
/// same-machine restore, like the tensor wire format above. Sequences are
/// length-prefixed so the reader needs no out-of-band sizes.
class ByteWriter {
 public:
  void u8(uint8_t v);
  void u32(uint32_t v);
  void u64(uint64_t v);
  void i64(int64_t v);
  void f32(float v);
  void f64(double v);
  /// u32 byte count + raw bytes.
  void str(const std::string& s);
  /// u32 count + payload.
  void i64s(const std::vector<int64_t>& v);
  void f64s(const std::vector<double>& v);
  /// pack_tensors framing (u32 count + per-tensor wire format).
  void tensors(const std::vector<Tensor>& ts);
  /// Append a pre-serialized byte blob verbatim (no length prefix) —
  /// checkpoint envelopes splice a checksummed payload stream this way.
  void raw(const std::vector<uint8_t>& blob);

  [[nodiscard]] const std::vector<uint8_t>& bytes() const noexcept {
    return buf_;
  }

 private:
  std::vector<uint8_t> buf_;
};

/// Sequential reader over a ByteWriter stream. Every accessor throws
/// std::invalid_argument on truncated input; expect_done() rejects
/// trailing garbage.
class ByteReader {
 public:
  /// Borrows `bytes`; the buffer must outlive the reader.
  explicit ByteReader(const std::vector<uint8_t>& bytes) : bytes_(&bytes) {}

  [[nodiscard]] uint8_t u8();
  [[nodiscard]] uint32_t u32();
  [[nodiscard]] uint64_t u64();
  [[nodiscard]] int64_t i64();
  [[nodiscard]] float f32();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<int64_t> i64s();
  [[nodiscard]] std::vector<double> f64s();
  [[nodiscard]] std::vector<Tensor> tensors();

  [[nodiscard]] bool done() const noexcept {
    return offset_ == bytes_->size();
  }
  /// Current read position (checksum validation hashes the bytes past the
  /// envelope header).
  [[nodiscard]] size_t offset() const noexcept { return offset_; }
  /// Throws unless the stream was consumed exactly.
  void expect_done() const;

 private:
  const std::vector<uint8_t>* bytes_;
  size_t offset_ = 0;
};

}  // namespace comdml::tensor
