// Byte-level (de)serialization of tensors and parameter sets.
//
// Used by the communication substrate so that "sending a model" moves real
// bytes whose count matches what the timing model charges for.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace comdml::tensor {

/// Serialized wire format: [rank u32][dims i64...][payload f32...].
[[nodiscard]] std::vector<uint8_t> to_bytes(const Tensor& t);

/// Parse one tensor from `bytes` starting at `offset`; advances `offset`.
/// Throws std::invalid_argument on truncated or malformed input.
[[nodiscard]] Tensor from_bytes(const std::vector<uint8_t>& bytes,
                                size_t& offset);

/// Serialize a whole parameter list (e.g. a model snapshot).
[[nodiscard]] std::vector<uint8_t> pack_tensors(const std::vector<Tensor>& ts);

/// Inverse of pack_tensors.
[[nodiscard]] std::vector<Tensor> unpack_tensors(
    const std::vector<uint8_t>& bytes);

/// Total payload bytes a tensor list occupies on the wire.
[[nodiscard]] int64_t wire_bytes(const std::vector<Tensor>& ts);

}  // namespace comdml::tensor
