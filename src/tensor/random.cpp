#include "tensor/random.hpp"

#include <cmath>
#include <sstream>

namespace comdml::tensor {

float Rng::uniform(float lo, float hi) {
  COMDML_CHECK(lo < hi);
  std::uniform_real_distribution<float> d(lo, hi);
  return d(engine_);
}

float Rng::normal(float mean, float stddev) {
  std::normal_distribution<float> d(mean, stddev);
  return d(engine_);
}

int64_t Rng::below(int64_t n) {
  COMDML_CHECK(n > 0);
  std::uniform_int_distribution<int64_t> d(0, n - 1);
  return d(engine_);
}

float Rng::laplace(float scale) {
  COMDML_CHECK(scale > 0.0f);
  // Inverse-CDF sampling: u in (-1/2, 1/2), x = -scale*sgn(u)*ln(1-2|u|).
  std::uniform_real_distribution<double> d(-0.5, 0.5);
  const double u = d(engine_);
  const double sgn = u < 0 ? -1.0 : 1.0;
  return static_cast<float>(-scale * sgn *
                            std::log(1.0 - 2.0 * std::fabs(u)));
}

std::vector<double> Rng::dirichlet(double alpha, size_t k) {
  COMDML_CHECK(alpha > 0.0 && k > 0);
  std::gamma_distribution<double> g(alpha, 1.0);
  std::vector<double> out(k);
  double total = 0.0;
  for (double& v : out) {
    v = g(engine_);
    total += v;
  }
  if (total <= 0.0) {  // pathological all-zero draw; fall back to uniform
    for (double& v : out) v = 1.0 / static_cast<double>(k);
    return out;
  }
  for (double& v : out) v /= total;
  return out;
}

void Rng::shuffle(std::vector<int64_t>& v) {
  for (size_t i = v.size(); i > 1; --i) {
    const auto j = static_cast<size_t>(below(static_cast<int64_t>(i)));
    std::swap(v[i - 1], v[j]);
  }
}

Tensor Rng::normal_tensor(Shape shape, float mean, float stddev) {
  Tensor out(std::move(shape));
  for (float& v : out.flat()) v = normal(mean, stddev);
  return out;
}

Tensor Rng::uniform_tensor(Shape shape, float lo, float hi) {
  Tensor out(std::move(shape));
  for (float& v : out.flat()) v = uniform(lo, hi);
  return out;
}

Tensor Rng::he_normal(Shape shape, int64_t fan_in) {
  COMDML_CHECK(fan_in > 0);
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return normal_tensor(std::move(shape), 0.0f, stddev);
}

Rng Rng::fork() {
  return Rng(engine_());
}

std::string Rng::state() const {
  std::ostringstream os;
  os << engine_;
  return os.str();
}

void Rng::set_state(const std::string& s) {
  std::istringstream is(s);
  is >> engine_;
  COMDML_REQUIRE(!is.fail(), "malformed rng state string");
}

}  // namespace comdml::tensor
