// Packed-panel GEMM core: raw-pointer single-precision matrix multiply
// used by the Tensor matmul family and directly by the nn layers (so hot
// paths can write into caller-owned buffers without Tensor temporaries).
//
// Implementation (gemm.cpp) is a BLIS-style packed GEMM: A is packed into
// MR-row panels of an MC x KC block, B into NR-column panels of a KC x NC
// block (both in thread-local workspace-arena scratch), and a register-
// tiled 6x16 micro-kernel runs over the panels. The micro-kernel is
// explicitly vectorized (AVX2+FMA, selected at runtime via CPU detection)
// behind the COMDML_SIMD compile gate, with a scalar fallback compiled
// unconditionally.
//
// Determinism: every output element accumulates its k-terms in ascending
// order — KC blocks ascend from absolute k = 0 and the micro-kernel walks
// each block in order — independent of the row partition, so results are
// bit-identical for every thread count. The kernel choice depends only on
// the host CPU, never on the thread count.
#pragma once

#include <cstdint>

namespace comdml::tensor {

/// General strided GEMM: C[m,n] (row-major, leading dimension n)
///   accumulate ? C += A @ B : C = A @ B
/// where logical A[i,p] = a[i*rs_a + p*cs_a] and logical
/// B[p,j] = b[p*rs_b + j*cs_b]. When `accumulate` is false, C is fully
/// overwritten (it may be uninitialized scratch). Parallelizes over rows
/// of C on the global thread pool; safe to call from inside a pool worker
/// (runs inline there).
void gemm_strided(const float* a, int64_t rs_a, int64_t cs_a,  //
                  const float* b, int64_t rs_b, int64_t cs_b,  //
                  float* c, int64_t m, int64_t n, int64_t k, bool accumulate);

/// C[m,n] {+}= A[m,k] @ B[k,n], all row-major and dense.
void gemm_nn(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n, bool accumulate = false);

/// C[m,n] {+}= A^T @ B where A is stored row-major [k,m].
void gemm_tn(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n, bool accumulate = false);

/// C[m,n] {+}= A @ B^T where B is stored row-major [n,k].
void gemm_nt(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n, bool accumulate = false);

/// Human-readable name of the micro-kernel selected for this process
/// ("avx2+fma" or "scalar") — for benchmark provenance.
const char* gemm_kernel_name();

}  // namespace comdml::tensor
