// Dense float32 tensor value type used throughout ComDML.
//
// Design notes (C++ Core Guidelines):
//  - Tensor is a regular value type (copyable, movable, equality-comparable);
//    all invariants (shape/size consistency) are established in constructors.
//  - No raw owning pointers; storage is std::vector<float>.
//  - Bounds are checked on the `at(...)` accessors; the flat `operator[]`
//    is checked in debug builds only (hot loops use spans).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "tensor/check.hpp"

namespace comdml::tensor {

/// Shape of a tensor, outermost dimension first (e.g. {N, C, H, W}).
using Shape = std::vector<int64_t>;

/// Number of elements implied by a shape. Throws on negative extents.
[[nodiscard]] int64_t shape_size(const Shape& shape);

/// Human-readable form such as "[2, 3, 4]".
[[nodiscard]] std::string shape_str(const Shape& shape);

/// Dense row-major float32 tensor.
class Tensor {
 public:
  /// Empty tensor (rank 0, zero elements).
  Tensor() = default;

  /// Zero-filled tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Constant-filled tensor of the given shape.
  Tensor(Shape shape, float fill);

  /// Tensor adopting `data`; `data.size()` must equal `shape_size(shape)`.
  Tensor(Shape shape, std::vector<float> data);

  /// Rank-1 tensor from a braced list: Tensor::of({1.f, 2.f, 3.f}).
  [[nodiscard]] static Tensor of(std::initializer_list<float> values);

  /// Rank-0-like scalar (shape {1}).
  [[nodiscard]] static Tensor scalar(float value);

  [[nodiscard]] const Shape& shape() const noexcept { return shape_; }
  [[nodiscard]] size_t rank() const noexcept { return shape_.size(); }
  [[nodiscard]] int64_t size() const noexcept {
    return static_cast<int64_t>(data_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  /// Extent of one axis; throws if `axis` is out of range.
  [[nodiscard]] int64_t dim(size_t axis) const;

  [[nodiscard]] std::span<float> flat() noexcept { return data_; }
  [[nodiscard]] std::span<const float> flat() const noexcept { return data_; }

  /// Unchecked-in-release flat element access.
  [[nodiscard]] float& operator[](int64_t i) {
    COMDML_DCHECK(i >= 0 && i < size());
    return data_[static_cast<size_t>(i)];
  }
  [[nodiscard]] float operator[](int64_t i) const {
    COMDML_DCHECK(i >= 0 && i < size());
    return data_[static_cast<size_t>(i)];
  }

  /// Bounds-checked multi-dimensional access.
  [[nodiscard]] float& at(std::initializer_list<int64_t> idx);
  [[nodiscard]] float at(std::initializer_list<int64_t> idx) const;

  /// Row-major offset of a multi-index; bounds-checked.
  [[nodiscard]] int64_t offset(std::initializer_list<int64_t> idx) const;

  /// Same data, new shape; element counts must match.
  [[nodiscard]] Tensor reshaped(Shape new_shape) const;

  /// Re-shape in place, reusing the existing storage when it is large
  /// enough (no heap traffic in steady state). Element contents are
  /// unspecified afterwards — for cached scratch that is fully rewritten.
  void resize(Shape new_shape);

  void fill(float value);

  /// Bytes occupied by the payload (float32 elements).
  [[nodiscard]] int64_t nbytes() const noexcept {
    return size() * static_cast<int64_t>(sizeof(float));
  }

  friend bool operator==(const Tensor& a, const Tensor& b) {
    return a.shape_ == b.shape_ && a.data_ == b.data_;
  }

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace comdml::tensor
