#include "tensor/gemm.hpp"

#include <algorithm>
#include <cstring>

#include "core/parallel.hpp"
#include "core/workspace.hpp"

// COMDML_SIMD (default ON) compiles the AVX2+FMA micro-kernel alongside the
// scalar one; the faster kernel is selected once at startup via CPU
// detection. Defining COMDML_SIMD=0 (CMake option) forces the scalar path.
#ifndef COMDML_SIMD
#define COMDML_SIMD 1
#endif
#if COMDML_SIMD && defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define COMDML_SIMD_X86 1
#include <immintrin.h>
#else
#define COMDML_SIMD_X86 0
#endif

namespace comdml::tensor {

namespace {

// Register tile of the micro-kernel: MR x NR outputs held in registers
// (6 x 16 floats = 12 AVX2 accumulators + 2 B vectors + 1 broadcast).
constexpr int64_t kMR = 6;
constexpr int64_t kNR = 16;

// Cache blocking: the packed A block (MC x KC floats, ~96 KiB) targets L2,
// the packed B block (KC x NC, ~512 KiB) L2/L3, and one B panel touched by
// the micro-kernel (KC x NR, 16 KiB) stays L1-resident across the ir loop.
constexpr int64_t kMC = 96;   // multiple of kMR
constexpr int64_t kKC = 256;
constexpr int64_t kNC = 512;  // multiple of kNR

/// Minimum per-task FLOP count before a GEMM fans out to the pool.
constexpr double kGemmGrainFlops = 1 << 22;

/// Every row chunk repacks the full B it touches (k*n elements, however
/// few rows it owns), so chunks need enough rows that the micro-kernel
/// work dwarfs the duplicated packing. 4*MR rows give 8*MR flops per
/// packed B element — packing stays a few percent. Below that (tiny-m,
/// huge-k reduction GEMMs like a batched conv dW) fanning out actively
/// loses: every extra chunk is a full extra B pack.
constexpr int64_t kGemmMinChunkRows = 4 * kMR;

int64_t row_grain(int64_t k, int64_t n) {
  const double row_flops = 2.0 * static_cast<double>(k) * n;
  const auto rows = static_cast<int64_t>(kGemmGrainFlops /
                                         std::max(row_flops, 1.0));
  // Round up to a panel multiple so grain-sized task boundaries fall on
  // full MR tiles. (The pool may still pick a larger, unaligned chunk for
  // load balance; a seam mid-tile only costs the padded-copy edge path at
  // that boundary, never correctness.)
  return std::max<int64_t>(kGemmMinChunkRows,
                           (rows + kMR - 1) / kMR * kMR);
}

/// kc x NR panel product into a full MR x NR tile at `c` (leading dim ldc).
/// ap: packed MR-row panel, ap[kk*MR + r]; bp: packed NR-col panel,
/// bp[kk*NR + j]. zero_init starts the accumulators at 0 instead of C.
/// Accumulation is ascending-k for every element.
using MicroKernel = void (*)(int64_t kc, const float* ap, const float* bp,
                             float* c, int64_t ldc, bool zero_init);

void kernel_6x16_scalar(int64_t kc, const float* ap, const float* bp,
                        float* c, int64_t ldc, bool zero_init) {
  float acc[kMR][kNR];
  if (zero_init) {
    for (auto& row : acc)
      for (float& v : row) v = 0.0f;
  } else {
    for (int64_t r = 0; r < kMR; ++r)
      for (int64_t j = 0; j < kNR; ++j) acc[r][j] = c[r * ldc + j];
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const float* brow = bp + kk * kNR;
    for (int64_t r = 0; r < kMR; ++r) {
      const float av = ap[kk * kMR + r];
      for (int64_t j = 0; j < kNR; ++j) acc[r][j] += av * brow[j];
    }
  }
  for (int64_t r = 0; r < kMR; ++r)
    for (int64_t j = 0; j < kNR; ++j) c[r * ldc + j] = acc[r][j];
}

#if COMDML_SIMD_X86
__attribute__((target("avx2,fma"))) void kernel_6x16_avx2(
    int64_t kc, const float* ap, const float* bp, float* c, int64_t ldc,
    bool zero_init) {
  __m256 c00, c01, c10, c11, c20, c21, c30, c31, c40, c41, c50, c51;
  if (zero_init) {
    c00 = c01 = c10 = c11 = c20 = c21 = _mm256_setzero_ps();
    c30 = c31 = c40 = c41 = c50 = c51 = _mm256_setzero_ps();
  } else {
    c00 = _mm256_loadu_ps(c + 0 * ldc);
    c01 = _mm256_loadu_ps(c + 0 * ldc + 8);
    c10 = _mm256_loadu_ps(c + 1 * ldc);
    c11 = _mm256_loadu_ps(c + 1 * ldc + 8);
    c20 = _mm256_loadu_ps(c + 2 * ldc);
    c21 = _mm256_loadu_ps(c + 2 * ldc + 8);
    c30 = _mm256_loadu_ps(c + 3 * ldc);
    c31 = _mm256_loadu_ps(c + 3 * ldc + 8);
    c40 = _mm256_loadu_ps(c + 4 * ldc);
    c41 = _mm256_loadu_ps(c + 4 * ldc + 8);
    c50 = _mm256_loadu_ps(c + 5 * ldc);
    c51 = _mm256_loadu_ps(c + 5 * ldc + 8);
  }
  for (int64_t kk = 0; kk < kc; ++kk) {
    const __m256 b0 = _mm256_loadu_ps(bp + kk * kNR);
    const __m256 b1 = _mm256_loadu_ps(bp + kk * kNR + 8);
    const float* arow = ap + kk * kMR;
    __m256 a;
    a = _mm256_broadcast_ss(arow + 0);
    c00 = _mm256_fmadd_ps(a, b0, c00);
    c01 = _mm256_fmadd_ps(a, b1, c01);
    a = _mm256_broadcast_ss(arow + 1);
    c10 = _mm256_fmadd_ps(a, b0, c10);
    c11 = _mm256_fmadd_ps(a, b1, c11);
    a = _mm256_broadcast_ss(arow + 2);
    c20 = _mm256_fmadd_ps(a, b0, c20);
    c21 = _mm256_fmadd_ps(a, b1, c21);
    a = _mm256_broadcast_ss(arow + 3);
    c30 = _mm256_fmadd_ps(a, b0, c30);
    c31 = _mm256_fmadd_ps(a, b1, c31);
    a = _mm256_broadcast_ss(arow + 4);
    c40 = _mm256_fmadd_ps(a, b0, c40);
    c41 = _mm256_fmadd_ps(a, b1, c41);
    a = _mm256_broadcast_ss(arow + 5);
    c50 = _mm256_fmadd_ps(a, b0, c50);
    c51 = _mm256_fmadd_ps(a, b1, c51);
  }
  _mm256_storeu_ps(c + 0 * ldc, c00);
  _mm256_storeu_ps(c + 0 * ldc + 8, c01);
  _mm256_storeu_ps(c + 1 * ldc, c10);
  _mm256_storeu_ps(c + 1 * ldc + 8, c11);
  _mm256_storeu_ps(c + 2 * ldc, c20);
  _mm256_storeu_ps(c + 2 * ldc + 8, c21);
  _mm256_storeu_ps(c + 3 * ldc, c30);
  _mm256_storeu_ps(c + 3 * ldc + 8, c31);
  _mm256_storeu_ps(c + 4 * ldc, c40);
  _mm256_storeu_ps(c + 4 * ldc + 8, c41);
  _mm256_storeu_ps(c + 5 * ldc, c50);
  _mm256_storeu_ps(c + 5 * ldc + 8, c51);
}
#endif  // COMDML_SIMD_X86

MicroKernel resolve_kernel() {
#if COMDML_SIMD_X86
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return kernel_6x16_avx2;
#endif
  return kernel_6x16_scalar;
}

const MicroKernel g_kernel = resolve_kernel();

/// Runs the micro-kernel on a possibly partial mr x nr tile. Partial tiles
/// compute the full padded tile into a local buffer (padded A rows / B
/// columns are zero, so valid elements see exactly the same arithmetic as
/// interior tiles) and write back only the valid region.
void run_tile(int64_t kc, const float* ap, const float* bp, float* c,
              int64_t ldc, int64_t mr, int64_t nr, bool zero_init) {
  if (mr == kMR && nr == kNR) {
    g_kernel(kc, ap, bp, c, ldc, zero_init);
    return;
  }
  alignas(64) float cbuf[kMR * kNR] = {};
  if (!zero_init) {
    for (int64_t r = 0; r < mr; ++r)
      std::memcpy(cbuf + r * kNR, c + r * ldc,
                  static_cast<size_t>(nr) * sizeof(float));
  }
  g_kernel(kc, ap, bp, cbuf, kNR, zero_init);
  for (int64_t r = 0; r < mr; ++r)
    std::memcpy(c + r * ldc, cbuf + r * kNR,
                static_cast<size_t>(nr) * sizeof(float));
}

/// Packs A[i0:i0+mc, p0:p0+kc] (logical indices, strides rs/cs) into
/// MR-row panels: dst panel p holds rows i0+p*MR.., layout dst[kk*MR + r],
/// zero-padded to a full MR rows at the edge.
void pack_a(const float* a, int64_t rs, int64_t cs, int64_t i0, int64_t p0,
            int64_t mc, int64_t kc, float* dst) {
  for (int64_t pr = 0; pr < mc; pr += kMR) {
    const int64_t rows = std::min(kMR, mc - pr);
    const float* base = a + (i0 + pr) * rs + p0 * cs;
    for (int64_t kk = 0; kk < kc; ++kk) {
      const float* src = base + kk * cs;
      int64_t r = 0;
      for (; r < rows; ++r) dst[kk * kMR + r] = src[r * rs];
      for (; r < kMR; ++r) dst[kk * kMR + r] = 0.0f;
    }
    dst += kc * kMR;
  }
}

/// Packs B[p0:p0+kc, j0:j0+nc] (strides rs/cs) into NR-column panels:
/// dst panel q holds columns j0+q*NR.., layout dst[kk*NR + j], zero-padded
/// to a full NR columns at the edge.
void pack_b(const float* b, int64_t rs, int64_t cs, int64_t p0, int64_t j0,
            int64_t kc, int64_t nc, float* dst) {
  for (int64_t qc = 0; qc < nc; qc += kNR) {
    const int64_t cols = std::min(kNR, nc - qc);
    const float* base = b + p0 * rs + (j0 + qc) * cs;
    if (cs == 1) {
      for (int64_t kk = 0; kk < kc; ++kk) {
        std::memcpy(dst + kk * kNR, base + kk * rs,
                    static_cast<size_t>(cols) * sizeof(float));
        for (int64_t j = cols; j < kNR; ++j) dst[kk * kNR + j] = 0.0f;
      }
    } else {
      for (int64_t kk = 0; kk < kc; ++kk) {
        const float* src = base + kk * rs;
        int64_t j = 0;
        for (; j < cols; ++j) dst[kk * kNR + j] = src[j * cs];
        for (; j < kNR; ++j) dst[kk * kNR + j] = 0.0f;
      }
    }
    dst += kc * kNR;
  }
}

/// Packed GEMM over the row range [lo, hi) of C. The k blocks ascend from
/// absolute k = 0 whatever the row partition, so each element's
/// accumulation order is partition-independent.
void gemm_rows(const float* a, int64_t rs_a, int64_t cs_a,  //
               const float* b, int64_t rs_b, int64_t cs_b,  //
               float* c, int64_t lo, int64_t hi, int64_t n, int64_t k,
               bool accumulate) {
  core::Scratch<float> bpack(kKC * kNC);
  core::Scratch<float> apack(kMC * kKC);
  for (int64_t jc = 0; jc < n; jc += kNC) {
    const int64_t nc = std::min(kNC, n - jc);
    for (int64_t pc = 0; pc < k; pc += kKC) {
      const int64_t kc = std::min(kKC, k - pc);
      const bool zero_init = pc == 0 && !accumulate;
      pack_b(b, rs_b, cs_b, pc, jc, kc, nc, bpack.data());
      for (int64_t ic = lo; ic < hi; ic += kMC) {
        const int64_t mc = std::min(kMC, hi - ic);
        pack_a(a, rs_a, cs_a, ic, pc, mc, kc, apack.data());
        for (int64_t jr = 0; jr < nc; jr += kNR) {
          const int64_t nr = std::min(kNR, nc - jr);
          const float* bpanel = bpack.data() + (jr / kNR) * kc * kNR;
          for (int64_t ir = 0; ir < mc; ir += kMR) {
            const int64_t mr = std::min(kMR, mc - ir);
            const float* apanel = apack.data() + (ir / kMR) * kc * kMR;
            run_tile(kc, apanel, bpanel, c + (ic + ir) * n + jc + jr, n, mr,
                     nr, zero_init);
          }
        }
      }
    }
  }
}

}  // namespace

void gemm_strided(const float* a, int64_t rs_a, int64_t cs_a,  //
                  const float* b, int64_t rs_b, int64_t cs_b,  //
                  float* c, int64_t m, int64_t n, int64_t k, bool accumulate) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    if (!accumulate)
      std::memset(c, 0, static_cast<size_t>(m * n) * sizeof(float));
    return;
  }
  core::parallel_for(0, m, row_grain(k, n), [=](int64_t lo, int64_t hi) {
    gemm_rows(a, rs_a, cs_a, b, rs_b, cs_b, c, lo, hi, n, k, accumulate);
  });
}

void gemm_nn(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n, bool accumulate) {
  gemm_strided(a, k, 1, b, n, 1, c, m, n, k, accumulate);
}

void gemm_tn(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n, bool accumulate) {
  gemm_strided(a, 1, m, b, n, 1, c, m, n, k, accumulate);
}

void gemm_nt(const float* a, const float* b, float* c, int64_t m, int64_t k,
             int64_t n, bool accumulate) {
  gemm_strided(a, k, 1, b, 1, k, c, m, n, k, accumulate);
}

const char* gemm_kernel_name() {
#if COMDML_SIMD_X86
  if (g_kernel == kernel_6x16_avx2) return "avx2+fma";
#endif
  return "scalar";
}

}  // namespace comdml::tensor
