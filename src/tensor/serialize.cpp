#include "tensor/serialize.hpp"

#include <cstring>

namespace comdml::tensor {

namespace {

template <typename T>
void append_raw(std::vector<uint8_t>& out, const T& value) {
  const auto* p = reinterpret_cast<const uint8_t*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T read_raw(const std::vector<uint8_t>& bytes, size_t& offset) {
  COMDML_REQUIRE(offset + sizeof(T) <= bytes.size(),
                 "truncated tensor wire data at offset " << offset);
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

}  // namespace

uint64_t fnv1a(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::vector<uint8_t> to_bytes(const Tensor& t) {
  std::vector<uint8_t> out;
  out.reserve(sizeof(uint32_t) + t.rank() * sizeof(int64_t) +
              static_cast<size_t>(t.nbytes()));
  append_raw(out, static_cast<uint32_t>(t.rank()));
  for (size_t i = 0; i < t.rank(); ++i) append_raw(out, t.dim(i));
  const auto flat = t.flat();
  const auto* p = reinterpret_cast<const uint8_t*>(flat.data());
  out.insert(out.end(), p, p + flat.size() * sizeof(float));
  return out;
}

Tensor from_bytes(const std::vector<uint8_t>& bytes, size_t& offset) {
  const auto rank = read_raw<uint32_t>(bytes, offset);
  COMDML_REQUIRE(rank <= 8, "implausible tensor rank " << rank);
  Shape shape(rank);
  for (auto& d : shape) d = read_raw<int64_t>(bytes, offset);
  const int64_t n = shape_size(shape);
  COMDML_REQUIRE(offset + static_cast<size_t>(n) * sizeof(float) <=
                     bytes.size(),
                 "truncated tensor payload");
  std::vector<float> data(static_cast<size_t>(n));
  std::memcpy(data.data(), bytes.data() + offset,
              static_cast<size_t>(n) * sizeof(float));
  offset += static_cast<size_t>(n) * sizeof(float);
  return Tensor(std::move(shape), std::move(data));
}

std::vector<uint8_t> pack_tensors(const std::vector<Tensor>& ts) {
  std::vector<uint8_t> out;
  append_raw(out, static_cast<uint32_t>(ts.size()));
  for (const auto& t : ts) {
    const auto one = to_bytes(t);
    out.insert(out.end(), one.begin(), one.end());
  }
  return out;
}

std::vector<Tensor> unpack_tensors(const std::vector<uint8_t>& bytes) {
  size_t offset = 0;
  const auto count = read_raw<uint32_t>(bytes, offset);
  std::vector<Tensor> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) out.push_back(from_bytes(bytes, offset));
  COMDML_REQUIRE(offset == bytes.size(),
                 "trailing bytes after tensor pack: " << bytes.size() - offset);
  return out;
}

void ByteWriter::u8(uint8_t v) { append_raw(buf_, v); }
void ByteWriter::u32(uint32_t v) { append_raw(buf_, v); }
void ByteWriter::u64(uint64_t v) { append_raw(buf_, v); }
void ByteWriter::i64(int64_t v) { append_raw(buf_, v); }
void ByteWriter::f32(float v) { append_raw(buf_, v); }
void ByteWriter::f64(double v) { append_raw(buf_, v); }

void ByteWriter::str(const std::string& s) {
  u32(static_cast<uint32_t>(s.size()));
  const auto* p = reinterpret_cast<const uint8_t*>(s.data());
  buf_.insert(buf_.end(), p, p + s.size());
}

void ByteWriter::i64s(const std::vector<int64_t>& v) {
  u32(static_cast<uint32_t>(v.size()));
  const auto* p = reinterpret_cast<const uint8_t*>(v.data());
  buf_.insert(buf_.end(), p, p + v.size() * sizeof(int64_t));
}

void ByteWriter::f64s(const std::vector<double>& v) {
  u32(static_cast<uint32_t>(v.size()));
  const auto* p = reinterpret_cast<const uint8_t*>(v.data());
  buf_.insert(buf_.end(), p, p + v.size() * sizeof(double));
}

void ByteWriter::tensors(const std::vector<Tensor>& ts) {
  const auto packed = pack_tensors(ts);
  buf_.insert(buf_.end(), packed.begin(), packed.end());
}

void ByteWriter::raw(const std::vector<uint8_t>& blob) {
  buf_.insert(buf_.end(), blob.begin(), blob.end());
}

uint8_t ByteReader::u8() { return read_raw<uint8_t>(*bytes_, offset_); }
uint32_t ByteReader::u32() { return read_raw<uint32_t>(*bytes_, offset_); }
uint64_t ByteReader::u64() { return read_raw<uint64_t>(*bytes_, offset_); }
int64_t ByteReader::i64() { return read_raw<int64_t>(*bytes_, offset_); }
float ByteReader::f32() { return read_raw<float>(*bytes_, offset_); }
double ByteReader::f64() { return read_raw<double>(*bytes_, offset_); }

std::string ByteReader::str() {
  const auto n = u32();
  COMDML_REQUIRE(offset_ + n <= bytes_->size(), "truncated string payload");
  std::string out(reinterpret_cast<const char*>(bytes_->data() + offset_), n);
  offset_ += n;
  return out;
}

std::vector<int64_t> ByteReader::i64s() {
  const auto n = u32();
  std::vector<int64_t> out(n);
  for (auto& v : out) v = i64();
  return out;
}

std::vector<double> ByteReader::f64s() {
  const auto n = u32();
  std::vector<double> out(n);
  for (auto& v : out) v = f64();
  return out;
}

std::vector<Tensor> ByteReader::tensors() {
  const auto n = u32();
  std::vector<Tensor> out;
  out.reserve(n);
  for (uint32_t i = 0; i < n; ++i) out.push_back(from_bytes(*bytes_, offset_));
  return out;
}

void ByteReader::expect_done() const {
  COMDML_REQUIRE(done(), "trailing bytes in stream: "
                             << bytes_->size() - offset_ << " unread");
}

int64_t wire_bytes(const std::vector<Tensor>& ts) {
  int64_t total = static_cast<int64_t>(sizeof(uint32_t));
  for (const auto& t : ts) {
    total += static_cast<int64_t>(sizeof(uint32_t)) +
             static_cast<int64_t>(t.rank() * sizeof(int64_t)) + t.nbytes();
  }
  return total;
}

}  // namespace comdml::tensor
