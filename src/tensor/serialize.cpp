#include "tensor/serialize.hpp"

#include <cstring>

namespace comdml::tensor {

namespace {

template <typename T>
void append_raw(std::vector<uint8_t>& out, const T& value) {
  const auto* p = reinterpret_cast<const uint8_t*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T read_raw(const std::vector<uint8_t>& bytes, size_t& offset) {
  COMDML_REQUIRE(offset + sizeof(T) <= bytes.size(),
                 "truncated tensor wire data at offset " << offset);
  T value;
  std::memcpy(&value, bytes.data() + offset, sizeof(T));
  offset += sizeof(T);
  return value;
}

}  // namespace

std::vector<uint8_t> to_bytes(const Tensor& t) {
  std::vector<uint8_t> out;
  out.reserve(sizeof(uint32_t) + t.rank() * sizeof(int64_t) +
              static_cast<size_t>(t.nbytes()));
  append_raw(out, static_cast<uint32_t>(t.rank()));
  for (size_t i = 0; i < t.rank(); ++i) append_raw(out, t.dim(i));
  const auto flat = t.flat();
  const auto* p = reinterpret_cast<const uint8_t*>(flat.data());
  out.insert(out.end(), p, p + flat.size() * sizeof(float));
  return out;
}

Tensor from_bytes(const std::vector<uint8_t>& bytes, size_t& offset) {
  const auto rank = read_raw<uint32_t>(bytes, offset);
  COMDML_REQUIRE(rank <= 8, "implausible tensor rank " << rank);
  Shape shape(rank);
  for (auto& d : shape) d = read_raw<int64_t>(bytes, offset);
  const int64_t n = shape_size(shape);
  COMDML_REQUIRE(offset + static_cast<size_t>(n) * sizeof(float) <=
                     bytes.size(),
                 "truncated tensor payload");
  std::vector<float> data(static_cast<size_t>(n));
  std::memcpy(data.data(), bytes.data() + offset,
              static_cast<size_t>(n) * sizeof(float));
  offset += static_cast<size_t>(n) * sizeof(float);
  return Tensor(std::move(shape), std::move(data));
}

std::vector<uint8_t> pack_tensors(const std::vector<Tensor>& ts) {
  std::vector<uint8_t> out;
  append_raw(out, static_cast<uint32_t>(ts.size()));
  for (const auto& t : ts) {
    const auto one = to_bytes(t);
    out.insert(out.end(), one.begin(), one.end());
  }
  return out;
}

std::vector<Tensor> unpack_tensors(const std::vector<uint8_t>& bytes) {
  size_t offset = 0;
  const auto count = read_raw<uint32_t>(bytes, offset);
  std::vector<Tensor> out;
  out.reserve(count);
  for (uint32_t i = 0; i < count; ++i) out.push_back(from_bytes(bytes, offset));
  COMDML_REQUIRE(offset == bytes.size(),
                 "trailing bytes after tensor pack: " << bytes.size() - offset);
  return out;
}

int64_t wire_bytes(const std::vector<Tensor>& ts) {
  int64_t total = static_cast<int64_t>(sizeof(uint32_t));
  for (const auto& t : ts) {
    total += static_cast<int64_t>(sizeof(uint32_t)) +
             static_cast<int64_t>(t.rank() * sizeof(int64_t)) + t.nbytes();
  }
  return total;
}

}  // namespace comdml::tensor
