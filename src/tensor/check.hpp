// Error-checking macros used at API boundaries across the library.
//
// COMDML_CHECK   — always-on precondition check; throws std::invalid_argument.
// COMDML_REQUIRE — always-on check with a custom message stream.
// COMDML_DCHECK  — debug-only assertion for hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace comdml::detail {

[[noreturn]] inline void fail_check(const char* expr, const char* file,
                                    int line, const std::string& msg) {
  std::ostringstream os;
  os << "COMDML_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

}  // namespace comdml::detail

#define COMDML_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr))                                                        \
      ::comdml::detail::fail_check(#expr, __FILE__, __LINE__, "");      \
  } while (false)

#define COMDML_REQUIRE(expr, msg)                                       \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream os_;                                           \
      os_ << msg; /* NOLINT */                                          \
      ::comdml::detail::fail_check(#expr, __FILE__, __LINE__, os_.str()); \
    }                                                                   \
  } while (false)

#ifdef NDEBUG
#define COMDML_DCHECK(expr) ((void)0)
#else
#define COMDML_DCHECK(expr) COMDML_CHECK(expr)
#endif
