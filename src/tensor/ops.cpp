#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "core/parallel.hpp"
#include "tensor/gemm.hpp"

namespace comdml::tensor {

namespace {

using core::parallel_for;

/// Elementwise kernels only fan out to the pool for tensors at least this
/// large; below it the dispatch overhead dwarfs the loop.
constexpr int64_t kElementwiseGrain = 1 << 15;

void require_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  COMDML_REQUIRE(a.shape() == b.shape(),
                 op << ": shape mismatch " << shape_str(a.shape()) << " vs "
                    << shape_str(b.shape()));
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "add");
  Tensor out(a.shape());
  const float* ao = a.flat().data();
  const float* bo = b.flat().data();
  float* oo = out.flat().data();
  parallel_for(0, out.size(), kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) oo[i] = ao[i] + bo[i];
  });
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "sub");
  Tensor out(a.shape());
  const float* ao = a.flat().data();
  const float* bo = b.flat().data();
  float* oo = out.flat().data();
  parallel_for(0, out.size(), kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) oo[i] = ao[i] - bo[i];
  });
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "mul");
  Tensor out(a.shape());
  const float* ao = a.flat().data();
  const float* bo = b.flat().data();
  float* oo = out.flat().data();
  parallel_for(0, out.size(), kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) oo[i] = ao[i] * bo[i];
  });
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out(a.shape());
  const float* ao = a.flat().data();
  float* oo = out.flat().data();
  parallel_for(0, out.size(), kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) oo[i] = ao[i] * s;
  });
  return out;
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
  require_same_shape(x, y, "axpy");
  const float* xo = x.flat().data();
  float* yo = y.flat().data();
  parallel_for(0, y.size(), kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) yo[i] += alpha * xo[i];
  });
}

void add_inplace(Tensor& y, const Tensor& x) {
  require_same_shape(x, y, "add_inplace");
  const float* xo = x.flat().data();
  float* yo = y.flat().data();
  parallel_for(0, y.size(), kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) yo[i] += xo[i];
  });
}

void scale_inplace(Tensor& y, float s) {
  float* yo = y.flat().data();
  parallel_for(0, y.size(), kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) yo[i] *= s;
  });
}

void scale_add_inplace(Tensor& y, float alpha, float beta, const Tensor& x) {
  require_same_shape(x, y, "scale_add_inplace");
  const float* xo = x.flat().data();
  float* yo = y.flat().data();
  parallel_for(0, y.size(), kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) yo[i] = alpha * yo[i] + beta * xo[i];
  });
}

void sgd_momentum_update(Tensor& w, Tensor& v, const Tensor& g, float lr,
                         float momentum, float weight_decay) {
  require_same_shape(w, v, "sgd_momentum_update");
  require_same_shape(w, g, "sgd_momentum_update");
  float* wo = w.flat().data();
  float* vo = v.flat().data();
  const float* go = g.flat().data();
  parallel_for(0, w.size(), kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float grad = go[i] + weight_decay * wo[i];
      vo[i] = momentum * vo[i] - lr * grad;
      wo[i] += vo[i];
    }
  });
}

float sum(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.flat()) acc += v;
  return static_cast<float>(acc);
}

float mean(const Tensor& a) {
  COMDML_CHECK(a.size() > 0);
  return sum(a) / static_cast<float>(a.size());
}

float max_abs(const Tensor& a) {
  float m = 0.0f;
  for (float v : a.flat()) m = std::max(m, std::fabs(v));
  return m;
}

float l2_norm(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.flat()) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

int64_t argmax(const Tensor& a) {
  COMDML_CHECK(a.size() > 0);
  auto flat = a.flat();
  int64_t best = 0;
  for (int64_t i = 1; i < a.size(); ++i) {
    if (flat[static_cast<size_t>(i)] > flat[static_cast<size_t>(best)])
      best = i;
  }
  return best;
}

std::vector<int64_t> argmax_rows(const Tensor& a) {
  COMDML_REQUIRE(a.rank() == 2, "argmax_rows expects rank-2, got "
                                    << shape_str(a.shape()));
  const int64_t n = a.dim(0), c = a.dim(1);
  std::vector<int64_t> out(static_cast<size_t>(n));
  auto flat = a.flat();
  for (int64_t i = 0; i < n; ++i) {
    int64_t best = 0;
    const float* row = flat.data() + i * c;
    for (int64_t j = 1; j < c; ++j)
      if (row[j] > row[best]) best = j;
    out[static_cast<size_t>(i)] = best;
  }
  return out;
}

// The matmul family is a thin Tensor wrapper over the packed-panel GEMM
// core (tensor/gemm.{hpp,cpp}): A packed into MR-row panels, B into
// NR-column panels, register-tiled SIMD micro-kernel, row-parallel on the
// global pool with a partition-independent accumulation order.

Tensor matmul(const Tensor& a, const Tensor& b) {
  COMDML_REQUIRE(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(0),
                 "matmul: incompatible " << shape_str(a.shape()) << " @ "
                                         << shape_str(b.shape()));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  gemm_nn(a.flat().data(), b.flat().data(), out.flat().data(), m, k, n);
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  COMDML_REQUIRE(a.rank() == 2 && b.rank() == 2 && a.dim(0) == b.dim(0),
                 "matmul_tn: incompatible " << shape_str(a.shape()) << " @ "
                                            << shape_str(b.shape()));
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  gemm_tn(a.flat().data(), b.flat().data(), out.flat().data(), m, k, n);
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  COMDML_REQUIRE(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(1),
                 "matmul_nt: incompatible " << shape_str(a.shape()) << " @ "
                                            << shape_str(b.shape()));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor out({m, n});
  gemm_nt(a.flat().data(), b.flat().data(), out.flat().data(), m, k, n);
  return out;
}

Tensor matmul_reference(const Tensor& a, const Tensor& b) {
  COMDML_REQUIRE(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(0),
                 "matmul: incompatible " << shape_str(a.shape()) << " @ "
                                         << shape_str(b.shape()));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  const float* ap = a.flat().data();
  const float* bp = b.flat().data();
  float* op = out.flat().data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = ap[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = bp + kk * n;
      float* orow = op + i * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor matmul_tn_reference(const Tensor& a, const Tensor& b) {
  COMDML_REQUIRE(a.rank() == 2 && b.rank() == 2 && a.dim(0) == b.dim(0),
                 "matmul_tn: incompatible " << shape_str(a.shape()) << " @ "
                                            << shape_str(b.shape()));
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  const float* ap = a.flat().data();
  const float* bp = b.flat().data();
  float* op = out.flat().data();
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = ap + kk * m;
    const float* brow = bp + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = op + i * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor matmul_nt_reference(const Tensor& a, const Tensor& b) {
  COMDML_REQUIRE(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(1),
                 "matmul_nt: incompatible " << shape_str(a.shape()) << " @ "
                                            << shape_str(b.shape()));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor out({m, n});
  const float* ap = a.flat().data();
  const float* bp = b.flat().data();
  float* op = out.flat().data();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = ap + i * k;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = bp + j * k;
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) acc += double(arow[kk]) * brow[kk];
      op[i * n + j] = static_cast<float>(acc);
    }
  }
  return out;
}

Tensor transpose2d(const Tensor& a) {
  COMDML_REQUIRE(a.rank() == 2, "transpose2d expects rank-2, got "
                                    << shape_str(a.shape()));
  const int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  auto ai = a.flat();
  auto oo = out.flat();
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) oo[j * m + i] = ai[i * n + j];
  return out;
}

bool allclose(const Tensor& a, const Tensor& b, float atol) {
  if (a.shape() != b.shape()) return false;
  auto ao = a.flat(), bo = b.flat();
  for (size_t i = 0; i < ao.size(); ++i)
    if (std::fabs(ao[i] - bo[i]) > atol) return false;
  return true;
}

}  // namespace comdml::tensor
