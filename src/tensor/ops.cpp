#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "core/parallel.hpp"

namespace comdml::tensor {

namespace {

using core::parallel_for;

/// Elementwise kernels only fan out to the pool for tensors at least this
/// large; below it the dispatch overhead dwarfs the loop.
constexpr int64_t kElementwiseGrain = 1 << 15;

void require_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  COMDML_REQUIRE(a.shape() == b.shape(),
                 op << ": shape mismatch " << shape_str(a.shape()) << " vs "
                    << shape_str(b.shape()));
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "add");
  Tensor out(a.shape());
  const float* ao = a.flat().data();
  const float* bo = b.flat().data();
  float* oo = out.flat().data();
  parallel_for(0, out.size(), kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) oo[i] = ao[i] + bo[i];
  });
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "sub");
  Tensor out(a.shape());
  const float* ao = a.flat().data();
  const float* bo = b.flat().data();
  float* oo = out.flat().data();
  parallel_for(0, out.size(), kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) oo[i] = ao[i] - bo[i];
  });
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  require_same_shape(a, b, "mul");
  Tensor out(a.shape());
  const float* ao = a.flat().data();
  const float* bo = b.flat().data();
  float* oo = out.flat().data();
  parallel_for(0, out.size(), kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) oo[i] = ao[i] * bo[i];
  });
  return out;
}

Tensor scale(const Tensor& a, float s) {
  Tensor out(a.shape());
  const float* ao = a.flat().data();
  float* oo = out.flat().data();
  parallel_for(0, out.size(), kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) oo[i] = ao[i] * s;
  });
  return out;
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
  require_same_shape(x, y, "axpy");
  const float* xo = x.flat().data();
  float* yo = y.flat().data();
  parallel_for(0, y.size(), kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) yo[i] += alpha * xo[i];
  });
}

void add_inplace(Tensor& y, const Tensor& x) {
  require_same_shape(x, y, "add_inplace");
  const float* xo = x.flat().data();
  float* yo = y.flat().data();
  parallel_for(0, y.size(), kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) yo[i] += xo[i];
  });
}

void scale_inplace(Tensor& y, float s) {
  float* yo = y.flat().data();
  parallel_for(0, y.size(), kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) yo[i] *= s;
  });
}

void scale_add_inplace(Tensor& y, float alpha, float beta, const Tensor& x) {
  require_same_shape(x, y, "scale_add_inplace");
  const float* xo = x.flat().data();
  float* yo = y.flat().data();
  parallel_for(0, y.size(), kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) yo[i] = alpha * yo[i] + beta * xo[i];
  });
}

void sgd_momentum_update(Tensor& w, Tensor& v, const Tensor& g, float lr,
                         float momentum, float weight_decay) {
  require_same_shape(w, v, "sgd_momentum_update");
  require_same_shape(w, g, "sgd_momentum_update");
  float* wo = w.flat().data();
  float* vo = v.flat().data();
  const float* go = g.flat().data();
  parallel_for(0, w.size(), kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      const float grad = go[i] + weight_decay * wo[i];
      vo[i] = momentum * vo[i] - lr * grad;
      wo[i] += vo[i];
    }
  });
}

float sum(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.flat()) acc += v;
  return static_cast<float>(acc);
}

float mean(const Tensor& a) {
  COMDML_CHECK(a.size() > 0);
  return sum(a) / static_cast<float>(a.size());
}

float max_abs(const Tensor& a) {
  float m = 0.0f;
  for (float v : a.flat()) m = std::max(m, std::fabs(v));
  return m;
}

float l2_norm(const Tensor& a) {
  double acc = 0.0;
  for (float v : a.flat()) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

int64_t argmax(const Tensor& a) {
  COMDML_CHECK(a.size() > 0);
  auto flat = a.flat();
  int64_t best = 0;
  for (int64_t i = 1; i < a.size(); ++i) {
    if (flat[static_cast<size_t>(i)] > flat[static_cast<size_t>(best)])
      best = i;
  }
  return best;
}

std::vector<int64_t> argmax_rows(const Tensor& a) {
  COMDML_REQUIRE(a.rank() == 2, "argmax_rows expects rank-2, got "
                                    << shape_str(a.shape()));
  const int64_t n = a.dim(0), c = a.dim(1);
  std::vector<int64_t> out(static_cast<size_t>(n));
  auto flat = a.flat();
  for (int64_t i = 0; i < n; ++i) {
    int64_t best = 0;
    const float* row = flat.data() + i * c;
    for (int64_t j = 1; j < c; ++j)
      if (row[j] > row[best]) best = j;
    out[static_cast<size_t>(i)] = best;
  }
  return out;
}

namespace {

// Cache-blocking parameters (floats): the K x N panel of B touched by one
// (kb, jb) tile fits comfortably in L1/L2 and is reused across the rows of
// the task's i-block.
constexpr int64_t kBlockM = 64;
constexpr int64_t kBlockK = 256;
constexpr int64_t kBlockN = 1024;

/// Minimum per-task FLOP count before a matmul fans out to the pool.
constexpr double kMatmulGrainFlops = 1 << 22;

int64_t matmul_row_grain(int64_t k, int64_t n) {
  const double row_flops = 2.0 * static_cast<double>(k) * n;
  return std::max<int64_t>(1,
                           static_cast<int64_t>(kMatmulGrainFlops /
                                                std::max(row_flops, 1.0)));
}

/// Blocked C[i0:i1] += A[i0:i1,:] @ B with a 4-way k-unrolled inner kernel
/// (one pass over the C row per 4 B rows: 4x fewer C load/stores, more
/// independent multiplies in flight). The k accumulation order is fixed for
/// every output element regardless of blocking or row partition, so results
/// are identical for any thread count.
void matmul_rows(const float* ap, const float* bp, float* op, int64_t i0,
                 int64_t i1, int64_t k, int64_t n) {
  for (int64_t ib = i0; ib < i1; ib += kBlockM) {
    const int64_t ie = std::min(ib + kBlockM, i1);
    for (int64_t kb = 0; kb < k; kb += kBlockK) {
      const int64_t ke = std::min(kb + kBlockK, k);
      for (int64_t jb = 0; jb < n; jb += kBlockN) {
        const int64_t je = std::min(jb + kBlockN, n);
        for (int64_t i = ib; i < ie; ++i) {
          const float* arow = ap + i * k;
          float* orow = op + i * n;
          int64_t kk = kb;
          for (; kk + 4 <= ke; kk += 4) {
            const float a0 = arow[kk], a1 = arow[kk + 1];
            const float a2 = arow[kk + 2], a3 = arow[kk + 3];
            const float* b0 = bp + kk * n;
            const float* b1 = b0 + n;
            const float* b2 = b1 + n;
            const float* b3 = b2 + n;
            for (int64_t j = jb; j < je; ++j)
              orow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
          }
          for (; kk < ke; ++kk) {
            const float av = arow[kk];
            if (av == 0.0f) continue;
            const float* brow = bp + kk * n;
            for (int64_t j = jb; j < je; ++j) orow[j] += av * brow[j];
          }
        }
      }
    }
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  COMDML_REQUIRE(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(0),
                 "matmul: incompatible " << shape_str(a.shape()) << " @ "
                                         << shape_str(b.shape()));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  const float* ap = a.flat().data();
  const float* bp = b.flat().data();
  float* op = out.flat().data();
  parallel_for(0, m, matmul_row_grain(k, n), [=](int64_t lo, int64_t hi) {
    matmul_rows(ap, bp, op, lo, hi, k, n);
  });
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  COMDML_REQUIRE(a.rank() == 2 && b.rank() == 2 && a.dim(0) == b.dim(0),
                 "matmul_tn: incompatible " << shape_str(a.shape()) << " @ "
                                            << shape_str(b.shape()));
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  const float* ap = a.flat().data();
  const float* bp = b.flat().data();
  float* op = out.flat().data();
  // Row-parallel over C with the same 4-way k-unrolled kernel as matmul;
  // A is read with stride m. k groups start at absolute multiples of
  // kBlockK, so accumulation order is independent of the row partition.
  parallel_for(0, m, matmul_row_grain(k, n), [=](int64_t lo, int64_t hi) {
    for (int64_t ib = lo; ib < hi; ib += kBlockM) {
      const int64_t ie = std::min(ib + kBlockM, hi);
      for (int64_t kb = 0; kb < k; kb += kBlockK) {
        const int64_t ke = std::min(kb + kBlockK, k);
        for (int64_t i = ib; i < ie; ++i) {
          float* orow = op + i * n;
          int64_t kk = kb;
          for (; kk + 4 <= ke; kk += 4) {
            const float a0 = ap[kk * m + i], a1 = ap[(kk + 1) * m + i];
            const float a2 = ap[(kk + 2) * m + i], a3 = ap[(kk + 3) * m + i];
            const float* b0 = bp + kk * n;
            const float* b1 = b0 + n;
            const float* b2 = b1 + n;
            const float* b3 = b2 + n;
            for (int64_t j = 0; j < n; ++j)
              orow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
          }
          for (; kk < ke; ++kk) {
            const float av = ap[kk * m + i];
            if (av == 0.0f) continue;
            const float* brow = bp + kk * n;
            for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
          }
        }
      }
    }
  });
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  COMDML_REQUIRE(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(1),
                 "matmul_nt: incompatible " << shape_str(a.shape()) << " @ "
                                            << shape_str(b.shape()));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor out({m, n});
  const float* ap = a.flat().data();
  const float* bp = b.flat().data();
  float* op = out.flat().data();
  // Dot-product form; j-blocking keeps a tile of B rows hot across the
  // task's rows of A, and 4 dots run together so one pass over A's row
  // feeds 4 independent accumulators. Each dot still accumulates in
  // ascending-k order into its own double, so results match the reference
  // kernel bit-for-bit at any thread count.
  parallel_for(0, m, matmul_row_grain(k, n), [=](int64_t lo, int64_t hi) {
    for (int64_t jb = 0; jb < n; jb += kBlockM) {
      const int64_t je = std::min(jb + kBlockM, n);
      for (int64_t i = lo; i < hi; ++i) {
        const float* arow = ap + i * k;
        int64_t j = jb;
        for (; j + 4 <= je; j += 4) {
          const float* b0 = bp + j * k;
          const float* b1 = b0 + k;
          const float* b2 = b1 + k;
          const float* b3 = b2 + k;
          double acc0 = 0.0, acc1 = 0.0, acc2 = 0.0, acc3 = 0.0;
          for (int64_t kk = 0; kk < k; ++kk) {
            const double av = arow[kk];
            acc0 += av * b0[kk];
            acc1 += av * b1[kk];
            acc2 += av * b2[kk];
            acc3 += av * b3[kk];
          }
          op[i * n + j] = static_cast<float>(acc0);
          op[i * n + j + 1] = static_cast<float>(acc1);
          op[i * n + j + 2] = static_cast<float>(acc2);
          op[i * n + j + 3] = static_cast<float>(acc3);
        }
        for (; j < je; ++j) {
          const float* brow = bp + j * k;
          double acc = 0.0;
          for (int64_t kk = 0; kk < k; ++kk)
            acc += double(arow[kk]) * brow[kk];
          op[i * n + j] = static_cast<float>(acc);
        }
      }
    }
  });
  return out;
}

Tensor matmul_reference(const Tensor& a, const Tensor& b) {
  COMDML_REQUIRE(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(0),
                 "matmul: incompatible " << shape_str(a.shape()) << " @ "
                                         << shape_str(b.shape()));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  const float* ap = a.flat().data();
  const float* bp = b.flat().data();
  float* op = out.flat().data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float av = ap[i * k + kk];
      if (av == 0.0f) continue;
      const float* brow = bp + kk * n;
      float* orow = op + i * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor matmul_tn_reference(const Tensor& a, const Tensor& b) {
  COMDML_REQUIRE(a.rank() == 2 && b.rank() == 2 && a.dim(0) == b.dim(0),
                 "matmul_tn: incompatible " << shape_str(a.shape()) << " @ "
                                            << shape_str(b.shape()));
  const int64_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  Tensor out({m, n});
  const float* ap = a.flat().data();
  const float* bp = b.flat().data();
  float* op = out.flat().data();
  for (int64_t kk = 0; kk < k; ++kk) {
    const float* arow = ap + kk * m;
    const float* brow = bp + kk * n;
    for (int64_t i = 0; i < m; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* orow = op + i * n;
      for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
    }
  }
  return out;
}

Tensor matmul_nt_reference(const Tensor& a, const Tensor& b) {
  COMDML_REQUIRE(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(1),
                 "matmul_nt: incompatible " << shape_str(a.shape()) << " @ "
                                            << shape_str(b.shape()));
  const int64_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  Tensor out({m, n});
  const float* ap = a.flat().data();
  const float* bp = b.flat().data();
  float* op = out.flat().data();
  for (int64_t i = 0; i < m; ++i) {
    const float* arow = ap + i * k;
    for (int64_t j = 0; j < n; ++j) {
      const float* brow = bp + j * k;
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) acc += double(arow[kk]) * brow[kk];
      op[i * n + j] = static_cast<float>(acc);
    }
  }
  return out;
}

Tensor transpose2d(const Tensor& a) {
  COMDML_REQUIRE(a.rank() == 2, "transpose2d expects rank-2, got "
                                    << shape_str(a.shape()));
  const int64_t m = a.dim(0), n = a.dim(1);
  Tensor out({n, m});
  auto ai = a.flat();
  auto oo = out.flat();
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) oo[j * m + i] = ai[i * n + j];
  return out;
}

bool allclose(const Tensor& a, const Tensor& b, float atol) {
  if (a.shape() != b.shape()) return false;
  auto ao = a.flat(), bo = b.flat();
  for (size_t i = 0; i < ao.size(); ++i)
    if (std::fabs(ao[i] - bo[i]) > atol) return false;
  return true;
}

}  // namespace comdml::tensor
