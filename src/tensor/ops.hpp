// Elementwise, reduction and linear-algebra kernels on Tensor.
//
// All binary elementwise ops require identical shapes (no implicit
// broadcasting; the nn layer code is explicit about every expansion).
#pragma once

#include "tensor/tensor.hpp"

namespace comdml::tensor {

// ---- elementwise -----------------------------------------------------------

[[nodiscard]] Tensor add(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor sub(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor mul(const Tensor& a, const Tensor& b);

/// out = a * s
[[nodiscard]] Tensor scale(const Tensor& a, float s);

/// y += alpha * x  (shapes must match)
void axpy(float alpha, const Tensor& x, Tensor& y);

/// In-place y += x (shapes must match).
void add_inplace(Tensor& y, const Tensor& x);

/// In-place y *= s.
void scale_inplace(Tensor& y, float s);

/// Fused in-place y = alpha * y + beta * x (shapes must match). One pass
/// over memory instead of a scale_inplace + axpy pair.
void scale_add_inplace(Tensor& y, float alpha, float beta, const Tensor& x);

/// Fused SGD-with-momentum update, one pass over (w, v, g):
///   v = momentum * v - lr * (g + weight_decay * w);  w += v
void sgd_momentum_update(Tensor& w, Tensor& v, const Tensor& g, float lr,
                         float momentum, float weight_decay);

// ---- reductions ------------------------------------------------------------

[[nodiscard]] float sum(const Tensor& a);
[[nodiscard]] float mean(const Tensor& a);
[[nodiscard]] float max_abs(const Tensor& a);

/// L2 norm of the flattened tensor.
[[nodiscard]] float l2_norm(const Tensor& a);

/// Index of the maximum element of a rank-1 tensor (ties -> lowest index).
[[nodiscard]] int64_t argmax(const Tensor& a);

/// Row-wise argmax of a rank-2 tensor [N, C] -> N indices.
[[nodiscard]] std::vector<int64_t> argmax_rows(const Tensor& a);

// ---- linear algebra --------------------------------------------------------
//
// The matmul family wraps the packed-panel SIMD GEMM core
// (tensor/gemm.hpp) and runs row-parallel on the global thread pool
// (core/parallel.hpp). Each output row is computed by exactly one task
// with a fixed ascending-k accumulation order, so results are
// bit-identical for every thread count. Hot paths that want to avoid
// Tensor temporaries call the raw gemm_nn/gemm_tn/gemm_nt entry points
// directly.

/// C[M,N] = A[M,K] @ B[K,N]
[[nodiscard]] Tensor matmul(const Tensor& a, const Tensor& b);

/// C[M,N] = A^T[M,K] @ B[K,N] where A is stored [K,M].
[[nodiscard]] Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C[M,N] = A[M,K] @ B^T[K,N] where B is stored [N,K].
[[nodiscard]] Tensor matmul_nt(const Tensor& a, const Tensor& b);

// Naive single-thread reference kernels, kept for parity tests and as the
// serial baseline of the kernel benchmarks. Semantics match the fast
// variants above.
[[nodiscard]] Tensor matmul_reference(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor matmul_tn_reference(const Tensor& a, const Tensor& b);
[[nodiscard]] Tensor matmul_nt_reference(const Tensor& a, const Tensor& b);

/// Transpose of a rank-2 tensor.
[[nodiscard]] Tensor transpose2d(const Tensor& a);

// ---- comparisons -----------------------------------------------------------

/// True if same shape and all elements within `atol`.
[[nodiscard]] bool allclose(const Tensor& a, const Tensor& b,
                            float atol = 1e-5f);

}  // namespace comdml::tensor
