// Real-training implementations of the baselines on small models: every
// agent holds a replica + shard; one round = local full-model training
// followed by the method's aggregation pattern. Used by integration tests
// and examples to compare learning behaviour against ComDML's RealFleet.
#pragma once

#include <optional>

#include "core/real_fleet.hpp"
#include "core/round_pipeline.hpp"

namespace comdml::baselines {

class RealBaselineFleet {
 public:
  /// Alias of the shared layered fleet options (the drifted local copy of
  /// the SGD/batch/seed fields is gone): `train.prox_mu` holds the FedProx
  /// proximal coefficient, `comms.server_mbps` the FedAvg/FedProx server
  /// bandwidth.
  using Options = core::FleetOptions;

  RealBaselineFleet(learncurve::Method method,
                    const core::ModelFactory& factory, int64_t classes,
                    std::vector<data::Dataset> shards,
                    sim::Topology topology, Options options);

  struct RoundStats {
    float mean_loss = 0.0f;
    /// Executed traffic of the aggregation pattern when it runs through a
    /// comm::Transport collective (gossip, AllReduce, param-server);
    /// 0 for the local BrainTorrent mean.
    double aggregation_seconds = 0.0;
    int64_t aggregation_bytes = 0;  ///< max bytes any endpoint sent
  };

  RoundStats step();

  /// Accuracy of agent 0's model on a held-out set (post-aggregation all
  /// replicas agree for FedAvg/BrainTorrent/AllReduce; gossip replicas may
  /// differ, agent 0 is the reporting convention).
  [[nodiscard]] float evaluate(const data::Dataset& test);

  [[nodiscard]] int64_t agents() const noexcept {
    return static_cast<int64_t>(models_.size());
  }
  [[nodiscard]] nn::Sequential& model(int64_t agent);

 private:
  learncurve::Method method_;
  Options options_;
  std::vector<data::Dataset> shards_;
  sim::Topology topology_;
  tensor::Rng rng_;
  std::vector<std::unique_ptr<nn::Sequential>> models_;
  std::vector<std::unique_ptr<data::Batcher>> batchers_;
  /// Per-round aggregation merge buffers, reused across rounds.
  std::vector<std::vector<tensor::Tensor>> state_scratch_;
  /// Bucketed AllReduce-DML aggregation (comms.bucket_bytes > 0): agents
  /// publish their buckets as their local training finishes, and idle pool
  /// workers reduce ready buckets concurrently (comms.overlap).
  std::optional<nn::BucketPlan> bucket_plan_;
  std::unique_ptr<core::RoundPipeline> pipeline_;

  float train_locally(size_t agent,
                      const std::vector<tensor::Tensor>* global);
  void aggregate(RoundStats& stats);
};

}  // namespace comdml::baselines
