#include "baselines/baseline_fleet.hpp"

#include <algorithm>
#include <numeric>

#include "comm/gossip.hpp"
#include "comm/link.hpp"
#include "sim/resources.hpp"

namespace comdml::baselines {

BaselineFleet::BaselineFleet(Method method, const nn::ArchitectureSpec& spec,
                             FleetConfig config, sim::Topology topology,
                             std::vector<int64_t> shard_sizes)
    : method_(method),
      config_(config),
      topology_(std::move(topology)),
      shard_sizes_(std::move(shard_sizes)),
      flops_per_sample_(spec.total_flops()),
      model_bytes_(spec.total_param_bytes()),
      rng_(config.seed) {
  COMDML_REQUIRE(method != Method::kComDML,
                 "use core::SimulatedFleet for ComDML itself");
  COMDML_CHECK(config_.agents == topology_.agents());
  COMDML_CHECK(static_cast<int64_t>(shard_sizes_.size()) == config_.agents);
}

std::vector<int64_t> BaselineFleet::sample_participants() {
  std::vector<int64_t> all(static_cast<size_t>(config_.agents));
  std::iota(all.begin(), all.end(), 0);
  if (config_.participation >= 1.0) return all;
  const auto want = std::max<int64_t>(
      2, static_cast<int64_t>(config_.participation *
                              static_cast<double>(config_.agents)));
  rng_.shuffle(all);
  all.resize(static_cast<size_t>(std::min(want, config_.agents)));
  std::sort(all.begin(), all.end());
  return all;
}

std::vector<double> BaselineFleet::solo_times(
    const std::vector<int64_t>& participants) const {
  const double overhead =
      (method_ == Method::kFedProx ? kFedProxComputeOverhead : 1.0) *
      learncurve::privacy_compute_overhead(config_.privacy);
  std::vector<double> times;
  times.reserve(participants.size());
  for (const int64_t id : participants) {
    const double sps =
        sim::samples_per_sec(topology_.profile(id), flops_per_sample_);
    times.push_back(overhead *
                    static_cast<double>(shard_sizes_[static_cast<size_t>(id)]) /
                    sps);
  }
  return times;
}

RoundRecord BaselineFleet::step() {
  if (config_.reshuffle_period > 0 && round_ > 0 &&
      round_ % config_.reshuffle_period == 0) {
    auto profiles = topology_.profiles();
    sim::reshuffle_profiles(profiles, config_.reshuffle_fraction, rng_);
    topology_.set_profiles(std::move(profiles));
  }

  const auto participants = sample_participants();
  const auto compute = solo_times(participants);
  const double slowest =
      *std::max_element(compute.begin(), compute.end());

  RoundRecord rec;
  rec.round = round_;
  rec.compute_time = slowest;

  switch (method_) {
    case Method::kFedAvg:
    case Method::kFedProx: {
      comm::ParamServerConfig ps_cfg;
      ps_cfg.server_mbps = config_.server_mbps;
      ps_cfg.latency_sec = config_.latency_sec;
      const auto comm_times = comm::server_round_times(
          topology_.profiles(), participants, model_bytes_, ps_cfg);
      double worst = 0.0;
      for (size_t i = 0; i < participants.size(); ++i)
        worst = std::max(worst, compute[i] + comm_times[i]);
      rec.aggregation_time = worst - slowest;
      rec.round_time = worst;
      break;
    }
    case Method::kGossip: {
      // Gossip learning is asynchronous (Hegedus et al. [11]): nobody waits
      // for the global straggler, but an exchange blocks on its partner.
      // The effective round duration is the mean over agents of
      // max(own compute, partner compute) + model push.
      // One collective run yields both the partner draw and the per-agent
      // push times, so the compute-wait and transfer terms below describe
      // the same partners (the old two-draw version paired them
      // inconsistently).
      comm::SimTransport transport(
          comm::LinkGrid::from_topology(topology_, config_.latency_sec));
      comm::CollectiveRequest req;
      req.elems = comm::fp32_wire_elems(model_bytes_);
      req.rng = &rng_;
      const auto rep =
          comm::collective(comm::Protocol::kGossip).run(transport, req);
      const auto& partners = rep.partners;
      const auto& exch = transport.stats().send_seconds;
      double total = 0.0;
      for (size_t i = 0; i < participants.size(); ++i) {
        const auto id = static_cast<size_t>(participants[i]);
        double pair_compute = compute[i];
        if (partners[id]) {
          // Partner may be outside the participant sample; estimate its
          // compute from its profile.
          const int64_t p = *partners[id];
          const double sps = sim::samples_per_sec(topology_.profile(p),
                                                  flops_per_sample_);
          pair_compute = std::max(
              pair_compute,
              static_cast<double>(shard_sizes_[static_cast<size_t>(p)]) /
                  sps);
        }
        total += pair_compute + exch[id];
      }
      rec.round_time = total / static_cast<double>(participants.size());
      rec.aggregation_time =
          std::max(0.0, rec.round_time - slowest);
      break;
    }
    case Method::kBrainTorrent: {
      // One agent plays server for the round (Roy et al. [10]); the fleet
      // elects the best-connected participant as aggregator so the
      // (K-1)-model drain rides the widest available downlink. Peers push
      // in parallel over their own uplinks; the refreshed model returns the
      // same way.
      int64_t coord = participants.front();
      for (const int64_t id : participants)
        if (topology_.profile(id).mbps > topology_.profile(coord).mbps)
          coord = id;
      const double coord_bw = topology_.profile(coord).mbps;
      COMDML_REQUIRE(coord_bw > 0.0, "coordinator has no uplink");
      const auto peers = static_cast<double>(participants.size() - 1);
      double slowest_peer = 0.0;
      for (const int64_t id : participants) {
        if (id == coord) continue;
        slowest_peer = std::max(
            slowest_peer,
            comm::transfer_seconds(model_bytes_,
                                   topology_.profile(id).mbps,
                                   config_.latency_sec));
      }
      const double coord_drain =
          peers * static_cast<double>(model_bytes_) /
          comm::bytes_per_sec(coord_bw);
      const double one_way = std::max(slowest_peer, coord_drain);
      rec.aggregation_time = 2.0 * one_way;
      rec.round_time = slowest + rec.aggregation_time;
      break;
    }
    case Method::kAllReduceDML: {
      const auto min_bw = topology_.min_link_bandwidth();
      COMDML_REQUIRE(min_bw.has_value(), "topology has no usable link");
      const auto agg = comm::allreduce_cost(
          static_cast<int64_t>(participants.size()), model_bytes_, *min_bw,
          config_.aggregation, config_.latency_sec);
      rec.aggregation_time = agg.seconds;
      rec.round_time = slowest + agg.seconds;
      break;
    }
    case Method::kComDML:
      COMDML_CHECK(false);  // rejected in constructor
  }

  // All of these methods leave faster agents idle while the straggler
  // finishes its full-model update.
  for (const double t : compute) rec.idle_time += slowest - t;
  rec.unbalanced_time = rec.round_time;
  ++round_;
  return rec;
}

RunSummary BaselineFleet::run(int64_t rounds) {
  COMDML_CHECK(rounds > 0);
  RunSummary summary;
  for (int64_t r = 0; r < rounds; ++r) summary.add(step());
  return summary;
}

}  // namespace comdml::baselines
