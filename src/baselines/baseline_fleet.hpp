// Paper-scale timing simulation of the comparison methods (Table II/III,
// Fig. 3): FedAvg, FedProx, Gossip Learning, BrainTorrent, and plain
// decentralized AllReduce. Every method trains the *full* model locally
// (none of them balances workload); they differ in how updates move.
#pragma once

#include "comm/param_server.hpp"
#include "core/trainer.hpp"

namespace comdml::baselines {

using core::FleetConfig;
using core::RoundRecord;
using core::RunSummary;
using learncurve::Method;

class BaselineFleet {
 public:
  BaselineFleet(Method method, const nn::ArchitectureSpec& spec,
                FleetConfig config, sim::Topology topology,
                std::vector<int64_t> shard_sizes);

  RoundRecord step();
  RunSummary run(int64_t rounds);

  [[nodiscard]] Method method() const noexcept { return method_; }
  [[nodiscard]] int64_t model_bytes() const noexcept { return model_bytes_; }

 private:
  Method method_;
  FleetConfig config_;
  sim::Topology topology_;
  std::vector<int64_t> shard_sizes_;
  double flops_per_sample_;
  int64_t model_bytes_;
  tensor::Rng rng_;
  int64_t round_ = 0;

  [[nodiscard]] std::vector<double> solo_times(
      const std::vector<int64_t>& participants) const;
  [[nodiscard]] std::vector<int64_t> sample_participants();
};

/// Proximal-term compute overhead used for FedProx (extra gradient term).
inline constexpr double kFedProxComputeOverhead = 1.05;

}  // namespace comdml::baselines
