#include "baselines/real_baselines.hpp"

#include <algorithm>

#include "comm/allreduce.hpp"
#include "comm/gossip.hpp"
#include "comm/param_server.hpp"
#include "core/parallel.hpp"
#include "core/workspace.hpp"

namespace comdml::baselines {

RealBaselineFleet::RealBaselineFleet(learncurve::Method method,
                                     const core::ModelFactory& factory,
                                     int64_t classes,
                                     std::vector<data::Dataset> shards,
                                     sim::Topology topology, Options options)
    : method_(method),
      options_(options),
      shards_(std::move(shards)),
      topology_(std::move(topology)),
      rng_(options.seed) {
  (void)classes;
  options_.validate();
  COMDML_REQUIRE(method != learncurve::Method::kComDML,
                 "use core::RealFleet for ComDML");
  COMDML_CHECK(static_cast<int64_t>(shards_.size()) == topology_.agents());
  for (auto& s : shards_) s.validate();
  models_.reserve(shards_.size());
  batchers_.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    tensor::Rng model_rng = rng_.fork();
    models_.push_back(factory(model_rng));
    batchers_.push_back(std::make_unique<data::Batcher>(
        shards_[i], options_.train.batch_size, rng_.fork()));
  }
  const auto init = nn::state_of(*models_[0]);
  for (size_t i = 1; i < models_.size(); ++i)
    nn::load_state(*models_[i], init);

  if (method_ == learncurve::Method::kAllReduceDML &&
      options_.comms.bucket_bytes > 0) {
    bucket_plan_ =
        nn::BucketPlan::build(*models_[0], options_.comms.bucket_bytes);
    pipeline_ = std::make_unique<core::RoundPipeline>(
        static_cast<int64_t>(models_.size()), *bucket_plan_,
        core::bottleneck_grid(topology_, options_.comms.latency_sec),
        options_.comms.aggregation, options_.comms.bucket_codec(),
        options_.comms.error_feedback);
  }
}

float RealBaselineFleet::train_locally(
    size_t agent, const std::vector<tensor::Tensor>* global) {
  auto& model = *models_[agent];
  nn::SGD opt(model.parameters(), options_.train.sgd);
  float loss_sum = 0.0f;
  for (int64_t b = 0; b < options_.train.batches_per_round; ++b) {
    const auto batch = batchers_[agent]->next();
    if (method_ == learncurve::Method::kFedProx && global != nullptr) {
      // Proximal step: gradient + mu * (w - w_global).
      opt.zero_grad();
      const auto logits = model.forward(batch.x, true);
      auto res = nn::softmax_cross_entropy(logits, batch.y);
      (void)model.backward(res.grad_logits);
      std::vector<nn::Parameter*> params = model.parameters();
      size_t g = 0;
      std::vector<tensor::Tensor*> state;
      model.collect_state(state);
      // Parameters appear in state in collection order; apply the proximal
      // pull only to learnable parameters.
      (void)state;
      for (auto* p : params) {
        COMDML_CHECK(g < global->size());
        // Find matching global tensor by shape walk: parameter ordering is
        // stable across replicas, and state_of() lists parameter values in
        // the same order as collect_parameters for our layer set.
        const tensor::Tensor& anchor = (*global)[g];
        if (anchor.shape() == p->value.shape()) {
          auto gr = p->grad.flat();
          auto w = p->value.flat();
          auto a = anchor.flat();
          for (size_t k = 0; k < gr.size(); ++k)
            gr[k] += options_.train.prox_mu * (w[k] - a[k]);
        }
        ++g;
      }
      opt.step();
      loss_sum += res.loss;
    } else {
      loss_sum +=
          nn::train_batch_full(model, opt, batch.x, batch.y).loss;
    }
  }
  return loss_sum / static_cast<float>(options_.train.batches_per_round);
}

void RealBaselineFleet::aggregate(RoundStats& stats) {
  std::vector<std::vector<tensor::Tensor>>& states = state_scratch_;
  states.resize(models_.size());
  for (size_t i = 0; i < models_.size(); ++i)
    nn::copy_state_into(*models_[i], states[i]);
  const size_t k = models_.size();

  switch (method_) {
    case learncurve::Method::kFedAvg:
    case learncurve::Method::kFedProx: {
      // Server-side N_i/N weighted average, broadcast to all — the
      // "param_server" collective over a star grid whose agent<->server
      // edges share the server's aggregate bandwidth.
      std::vector<double> weights;
      weights.reserve(k);
      for (size_t i = 0; i < k; ++i)
        weights.push_back(static_cast<double>(shards_[i].size()));
      const bool all_connected = [&] {
        for (const auto& p : topology_.profiles())
          if (!p.connected()) return false;
        return true;
      }();
      if (!all_connected) {
        // An offline agent cannot reach the star; keep the historical
        // local-average semantics (no accounted traffic) for that case.
        const auto avg = comm::weighted_mean_state(states, weights);
        for (auto& m : models_) nn::load_state(*m, avg);
        break;
      }
      std::vector<int64_t> selected(k);
      comm::CollectiveRequest req;
      req.weights = weights;
      for (size_t i = 0; i < k; ++i)
        selected[i] = static_cast<int64_t>(i);
      comm::ParamServerConfig cfg;
      cfg.server_mbps = options_.comms.server_mbps;
      cfg.latency_sec = options_.comms.latency_sec;
      comm::InProcTransport transport(
          comm::param_server_grid(topology_.profiles(), selected, cfg));

      const int64_t n = comm::state_elems(states[0]);
      core::Scratch<double> slab(static_cast<int64_t>(k) * n);
      req.elems = n;
      req.participants = selected;
      req.buffers.resize(k);
      for (size_t i = 0; i < k; ++i) {
        req.buffers[i] = slab.data() + static_cast<int64_t>(i) * n;
        comm::flatten_state(states[i], req.buffers[i]);
      }
      (void)comm::collective(comm::Protocol::kParamServer)
          .run(transport, req);
      for (size_t i = 0; i < k; ++i)
        comm::unflatten_state(req.buffers[i], states[i]);
      for (size_t i = 0; i < k; ++i) nn::load_state(*models_[i], states[i]);
      stats.aggregation_seconds = transport.stats().seconds;
      stats.aggregation_bytes = transport.stats().max_bytes_sent();
      break;
    }
    case learncurve::Method::kBrainTorrent: {
      // Random coordinator averages and redistributes.
      const auto avg = comm::mean_state(states);
      for (auto& m : models_) nn::load_state(*m, avg);
      break;
    }
    case learncurve::Method::kAllReduceDML: {
      COMDML_CHECK(pipeline_ == nullptr);  // bucketed rounds skip aggregate()
      const auto outcome = comm::allreduce_average_over(
          states,
          core::bottleneck_grid(topology_, options_.comms.latency_sec),
          options_.comms.aggregation);
      for (size_t i = 0; i < k; ++i) nn::load_state(*models_[i], states[i]);
      stats.aggregation_seconds = outcome.cost.seconds;
      stats.aggregation_bytes = outcome.cost.bytes_per_agent;
      break;
    }
    case learncurve::Method::kGossip: {
      const int64_t bytes =
          static_cast<int64_t>(nn::state_bytes(*models_[0]));
      const auto times =
          comm::gossip_exchange(states, topology_, bytes, rng_);
      for (size_t i = 0; i < k; ++i) nn::load_state(*models_[i], states[i]);
      for (const double t : times)
        stats.aggregation_seconds = std::max(stats.aggregation_seconds, t);
      stats.aggregation_bytes = bytes;
      break;
    }
    case learncurve::Method::kComDML:
      COMDML_CHECK(false);
  }
}

RealBaselineFleet::RoundStats RealBaselineFleet::step() {
  std::optional<std::vector<tensor::Tensor>> global;
  if (method_ == learncurve::Method::kFedProx)
    global = nn::state_of(*models_[0]);

  RoundStats stats;
  // Agents are independent until aggregation (own replica, optimizer state
  // and batcher; `global` is read-only), so local training fans out to the
  // pool. Per-agent losses land in fixed slots and are reduced in agent
  // order, keeping the round identical for every thread count.
  //
  // Bucketed AllReduce-DML: each agent publishes its buckets as its local
  // training ends; RoundPipeline::run_round adds (overlap) one collector
  // slot per pool thread so idle workers reduce ready buckets while slower
  // agents still train, and aborts the pipeline on task exceptions.
  const bool bucketed = pipeline_ != nullptr;
  const bool overlap = bucketed && options_.comms.overlap;
  if (bucketed) pipeline_->begin_round();
  const int64_t n_agents = static_cast<int64_t>(models_.size());
  std::vector<float> losses(models_.size(), 0.0f);
  const auto train_task = [&](int64_t i) {
    losses[static_cast<size_t>(i)] =
        train_locally(static_cast<size_t>(i), global ? &*global : nullptr);
    if (bucketed) {
      std::vector<tensor::Tensor*> ptrs;
      models_[static_cast<size_t>(i)]->collect_state(ptrs);
      pipeline_->publish_state(i, ptrs);
    }
  };
  if (bucketed) {
    pipeline_->run_round(n_agents, train_task, overlap);
  } else {
    core::parallel_for(0, n_agents, 1, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) train_task(i);
    });
  }
  float loss = 0.0f;
  for (const float l : losses) loss += l;
  stats.mean_loss = loss / static_cast<float>(models_.size());

  if (bucketed) {
    if (!overlap) pipeline_->drain();
    for (size_t i = 0; i < models_.size(); ++i) {
      std::vector<tensor::Tensor*> ptrs;
      models_[i]->collect_state(ptrs);
      pipeline_->restore_state(static_cast<int64_t>(i), ptrs);
    }
    const core::PipelineStats ps = pipeline_->stats();
    stats.aggregation_seconds = ps.comm_seconds;
    stats.aggregation_bytes = ps.max_bytes_sent;
    return stats;
  }
  aggregate(stats);
  return stats;
}

float RealBaselineFleet::evaluate(const data::Dataset& test) {
  test.validate();
  return nn::evaluate_accuracy(*models_[0], test.images, test.labels);
}

nn::Sequential& RealBaselineFleet::model(int64_t agent) {
  COMDML_CHECK(agent >= 0 && agent < agents());
  return *models_[static_cast<size_t>(agent)];
}

}  // namespace comdml::baselines
