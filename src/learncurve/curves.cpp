#include "learncurve/curves.hpp"

#include <cmath>

#include "tensor/check.hpp"

namespace comdml::learncurve {

std::string method_name(Method m) {
  switch (m) {
    case Method::kComDML: return "ComDML";
    case Method::kGossip: return "Gossip Learning";
    case Method::kBrainTorrent: return "BrainTorrent";
    case Method::kAllReduceDML: return "AllReduce";
    case Method::kFedAvg: return "FedAvg";
    case Method::kFedProx: return "FedProx";
  }
  return "?";
}

CurveSpec base_curve(const std::string& dataset, const std::string& model,
                     PartitionKind partition) {
  // Calibration notes:
  //  - acc_max: slightly above the paper's target accuracy for each
  //    configuration (the targets are reachable but not trivially so).
  //  - tau: chosen so targets land at 150-450 rounds, the regime the paper's
  //    plateau-LR schedule implies; non-IID shards converge slower and to a
  //    lower ceiling (Dirichlet 0.5 label skew).
  // tau values are fitted to the round counts implied by the paper's
  // Table II FedAvg column (total time / simulated FedAvg round time);
  // EXPERIMENTS.md §calibration records the derivation.
  CurveSpec spec;
  const bool iid = partition == PartitionKind::kIID;
  if (dataset == "cifar10") {
    spec = iid ? CurveSpec{0.935, 54.5} : CurveSpec{0.885, 30.0};
  } else if (dataset == "cifar100") {
    spec = iid ? CurveSpec{0.700, 51.5} : CurveSpec{0.655, 78.2};
  } else if (dataset == "cinic10") {
    spec = iid ? CurveSpec{0.805, 49.0} : CurveSpec{0.715, 89.3};
  } else {
    COMDML_REQUIRE(false, "unknown dataset '" << dataset << "'");
  }
  if (model == "resnet56") {
    // reference model; no adjustment
  } else if (model == "resnet110") {
    spec.acc_max += 0.008;  // deeper model, slightly higher ceiling
    spec.tau *= 1.15;       // and slower per-round convergence
  } else {
    COMDML_REQUIRE(false, "unknown model '" << model << "'");
  }
  return spec;
}

double method_rate(Method method, double participation,
                   PartitionKind partition) {
  COMDML_CHECK(participation > 0.0 && participation <= 1.0);
  double rate = 1.0;
  switch (method) {
    case Method::kFedAvg:
    case Method::kBrainTorrent:
    case Method::kAllReduceDML:
      rate = 1.0;  // exact synchronous averaging of full local updates
      break;
    case Method::kFedProx:
      rate = 0.97;  // proximal term slows local progress slightly
      break;
    case Method::kComDML:
      // Local-loss split training (aux-head gradients on the slow side)
      // trades a small per-round progress loss for parallel updates.
      rate = 0.95;
      break;
    case Method::kGossip:
      // Single-peer mixing propagates information O(log K) slower than a
      // full AllReduce, and label-skewed shards make the exchanged models
      // locally biased (paper Table II: gossip loses its edge non-IID).
      rate = partition == PartitionKind::kIID ? 0.75 : 0.50;
      break;
  }
  // Client sampling: only a fraction of agents contribute per round, but
  // averaging still spreads their progress (Li et al. [13]); the penalty is
  // mild because each sampled agent still performs a full local epoch.
  return rate * (0.75 + 0.25 * participation);
}

double fleet_rounds_factor(int64_t agents) {
  COMDML_CHECK(agents > 0);
  const double k = static_cast<double>(agents);
  // Small fleets hold large shards and converge almost like centralized
  // training (Table I's 2-agent runs); larger fleets average more, smaller
  // local views and need mildly more rounds (Table III grows ~1.4x from 20
  // to 100 agents). Continuous at the 10-agent reference point.
  if (agents <= 10) return std::pow(k / 10.0, 0.95);
  return 1.0 + 0.15 * std::log2(k / 10.0);
}

double split_rate_penalty(double offloaded_fraction) {
  COMDML_CHECK(offloaded_fraction >= 0.0 && offloaded_fraction < 1.0);
  // Earlier auxiliary heads (more offloading) learn slightly weaker
  // slow-side features; decoupled-greedy results [15] bound the loss at a
  // few percent even for very early heads.
  return 1.0 - 0.12 * offloaded_fraction;
}

double gossip_mixing_factor(double link_connectivity) {
  COMDML_CHECK(link_connectivity > 0.0 && link_connectivity <= 1.0);
  return 1.0 / (0.55 + 0.45 * link_connectivity);
}

AccuracyModel::AccuracyModel(CurveSpec spec, double rate)
    : spec_(spec), rate_(rate) {
  COMDML_CHECK(spec.acc_max > 0.0 && spec.acc_max <= 1.0);
  COMDML_CHECK(spec.tau > 0.0);
  COMDML_CHECK(rate > 0.0 && rate <= 1.0);
}

double AccuracyModel::accuracy_at(double rounds) const {
  COMDML_CHECK(rounds >= 0.0);
  return spec_.acc_max * (1.0 - std::exp(-rounds * rate_ / spec_.tau));
}

std::optional<double> AccuracyModel::rounds_to(double target) const {
  COMDML_CHECK(target > 0.0 && target < 1.0);
  if (target >= spec_.acc_max) return std::nullopt;
  const double frac = target / spec_.acc_max;
  return -spec_.tau * std::log(1.0 - frac) / rate_;
}

AccuracyModel make_accuracy_model(const std::string& dataset,
                                  const std::string& model,
                                  PartitionKind partition, Method method,
                                  double participation) {
  return AccuracyModel(base_curve(dataset, model, partition),
                       method_rate(method, participation, partition));
}

std::string privacy_name(PrivacyTechnique t) {
  switch (t) {
    case PrivacyTechnique::kNone: return "none";
    case PrivacyTechnique::kDistanceCorrelation:
      return "distance correlation (alpha=0.5)";
    case PrivacyTechnique::kPatchShuffle: return "patch shuffling";
    case PrivacyTechnique::kDifferentialPrivacy:
      return "differential privacy (Laplace eps=0.5)";
  }
  return "?";
}

double privacy_accuracy_penalty(PrivacyTechnique t) {
  // Calibrated to paper §V-B-4 (100 agents, CIFAR-10, ResNet-56, 100
  // rounds): 83.5 % no-privacy baseline -> 81.7 / 83.2 / 77.6.
  switch (t) {
    case PrivacyTechnique::kNone: return 0.0;
    case PrivacyTechnique::kDistanceCorrelation: return 0.018;
    case PrivacyTechnique::kPatchShuffle: return 0.003;
    case PrivacyTechnique::kDifferentialPrivacy: return 0.059;
  }
  return 0.0;
}

double privacy_compute_overhead(PrivacyTechnique t) {
  switch (t) {
    case PrivacyTechnique::kNone: return 1.0;
    case PrivacyTechnique::kDistanceCorrelation: return 1.06;  // O(B^2) dCor
    case PrivacyTechnique::kPatchShuffle: return 1.01;
    case PrivacyTechnique::kDifferentialPrivacy: return 1.02;
  }
  return 1.0;
}

}  // namespace comdml::learncurve
