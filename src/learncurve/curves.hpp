// Calibrated accuracy-versus-round curves.
//
// The paper reports *time to reach a target accuracy* measured on a GPU
// testbed. Offline we cannot train ResNet-56/110 to 90 % on real CIFAR, so
// the per-round wall-clock times come from the faithful timing simulator and
// the mapping rounds -> accuracy comes from this module: a saturating
// exponential acc(r) = acc_max * (1 - exp(-r_eff / tau)) with
// r_eff = rounds * method_rate. Constants are calibrated once against the
// published end-point accuracies and documented in EXPERIMENTS.md; every
// reproduced *comparison* (who wins, by what factor) is driven by the
// simulated round times, not by this curve.
#pragma once

#include <optional>
#include <string>

#include "data/dataset.hpp"

namespace comdml::learncurve {

enum class Method {
  kComDML,
  kGossip,
  kBrainTorrent,
  kAllReduceDML,
  kFedAvg,
  kFedProx,
};

enum class PartitionKind { kIID, kDirichlet05 };

[[nodiscard]] std::string method_name(Method m);

/// Base curve constants for (dataset, model) under a partition scheme.
struct CurveSpec {
  double acc_max = 0.9;  ///< asymptotic accuracy
  double tau = 60.0;     ///< rounds scale of the saturating exponential
};

/// Calibrated (dataset, model, partition) table; throws on unknown names.
/// Known datasets: cifar10, cifar100, cinic10. Models: resnet56, resnet110.
[[nodiscard]] CurveSpec base_curve(const std::string& dataset,
                                   const std::string& model,
                                   PartitionKind partition);

/// Per-round effective-progress multiplier of a training method.
/// Synchronous full-averaging methods progress at rate 1; gossip mixes
/// through single peers and needs more rounds (much more under label skew,
/// where single-peer averaging propagates biased updates); ComDML pays a
/// small penalty for auxiliary-head local-loss training (Belilovsky et al.
/// [15]). `participation` in (0,1] models client sampling (Table III).
[[nodiscard]] double method_rate(Method method, double participation = 1.0,
                                 PartitionKind partition = PartitionKind::kIID);

/// Convergence slowdown of large fleets (more averaging, smaller local
/// views): multiply rounds-to-target by this factor (1.0 for <= 10 agents).
[[nodiscard]] double fleet_rounds_factor(int64_t agents);

/// Gossip-only slowdown on sparse communication graphs: single-peer mixing
/// time scales with the graph's spectral gap, so low link connectivity
/// multiplies gossip's rounds-to-target (1.0 on a full mesh). Synchronous
/// collectives are unaffected (they route through the connected graph).
[[nodiscard]] double gossip_mixing_factor(double link_connectivity);

/// Additional rate multiplier for local-loss split training as a function of
/// the offloaded model fraction in [0,1): the earlier the auxiliary head,
/// the weaker the slow-side features (Table I epochs-to-target effect).
[[nodiscard]] double split_rate_penalty(double offloaded_fraction);

class AccuracyModel {
 public:
  AccuracyModel(CurveSpec spec, double rate);

  /// Test accuracy after `rounds` aggregation rounds.
  [[nodiscard]] double accuracy_at(double rounds) const;

  /// Rounds needed to reach `target`; nullopt if target >= acc_max.
  [[nodiscard]] std::optional<double> rounds_to(double target) const;

  [[nodiscard]] const CurveSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  CurveSpec spec_;
  double rate_;
};

[[nodiscard]] AccuracyModel make_accuracy_model(
    const std::string& dataset, const std::string& model,
    PartitionKind partition, Method method, double participation = 1.0);

// ---- privacy integration (paper §V-B-4) -------------------------------------

enum class PrivacyTechnique {
  kNone,
  kDistanceCorrelation,  ///< NoPeek-style dCor regularizer, alpha = 0.5
  kPatchShuffle,
  kDifferentialPrivacy,  ///< Laplace, eps = 0.5, delta = 1e-5
};

[[nodiscard]] std::string privacy_name(PrivacyTechnique t);

/// Asymptotic accuracy drop caused by a privacy technique (calibrated to the
/// paper's 100-round accuracies: 81.7 % dCor / 83.2 % shuffle / 77.6 % DP).
[[nodiscard]] double privacy_accuracy_penalty(PrivacyTechnique t);

/// Multiplicative per-round compute overhead of a privacy technique.
[[nodiscard]] double privacy_compute_overhead(PrivacyTechnique t);

}  // namespace comdml::learncurve
