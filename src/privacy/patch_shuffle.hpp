// Patch shuffling on input images (Yao et al. [42]): spatially permutes
// square patches per sample so intermediate activations no longer reveal
// the original layout.
#pragma once

#include "tensor/random.hpp"

namespace comdml::privacy {

using tensor::Rng;
using tensor::Tensor;

/// Shuffle non-overlapping `patch` x `patch` blocks of every image in a
/// [N,C,H,W] batch with an independent permutation per sample. H and W must
/// be divisible by `patch`. The same permutation is applied to all channels
/// of one sample.
[[nodiscard]] Tensor patch_shuffle(const Tensor& images, int64_t patch,
                                   Rng& rng);

}  // namespace comdml::privacy
