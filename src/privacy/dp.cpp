#include "privacy/dp.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace comdml::privacy {

double clip_l2(std::span<Tensor> tensors, float max_norm) {
  COMDML_CHECK(max_norm > 0.0f);
  double sq = 0.0;
  for (const auto& t : tensors)
    for (const float v : t.flat()) sq += static_cast<double>(v) * v;
  const double norm = std::sqrt(sq);
  if (norm <= max_norm) return 1.0;
  const double scale = max_norm / norm;
  for (auto& t : tensors)
    tensor::scale_inplace(t, static_cast<float>(scale));
  return scale;
}

void laplace_mechanism(std::span<Tensor> tensors, double epsilon,
                       double sensitivity, Rng& rng) {
  COMDML_CHECK(epsilon > 0.0 && sensitivity > 0.0);
  const auto scale = static_cast<float>(sensitivity / epsilon);
  for (auto& t : tensors)
    for (float& v : t.flat()) v += rng.laplace(scale);
}

double gaussian_sigma(double epsilon, double delta, double sensitivity) {
  COMDML_CHECK(epsilon > 0.0 && delta > 0.0 && delta < 1.0 &&
               sensitivity > 0.0);
  return sensitivity * std::sqrt(2.0 * std::log(1.25 / delta)) / epsilon;
}

void gaussian_mechanism(std::span<Tensor> tensors, double epsilon,
                        double delta, double sensitivity, Rng& rng) {
  const auto sigma =
      static_cast<float>(gaussian_sigma(epsilon, delta, sensitivity));
  for (auto& t : tensors)
    for (float& v : t.flat()) v += rng.normal(0.0f, sigma);
}

}  // namespace comdml::privacy
