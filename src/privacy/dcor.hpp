// Distance correlation (Szekely et al.; used by NoPeek [43]) between raw
// inputs and intermediate activations — the privacy-leakage metric for
// split training. dCor in [0,1]; 0 = independent, 1 = fully dependent.
#pragma once

#include "tensor/tensor.hpp"

namespace comdml::privacy {

using tensor::Tensor;

/// Sample distance correlation between two batches of vectors. Both
/// tensors must have the same leading (batch) dimension; trailing
/// dimensions are flattened. O(N^2) in the batch size.
[[nodiscard]] double distance_correlation(const Tensor& x, const Tensor& z);

}  // namespace comdml::privacy
