#include "privacy/patch_shuffle.hpp"

#include <numeric>

namespace comdml::privacy {

Tensor patch_shuffle(const Tensor& images, int64_t patch, Rng& rng) {
  COMDML_REQUIRE(images.rank() == 4, "patch_shuffle expects [N,C,H,W], got "
                                         << tensor::shape_str(images.shape()));
  COMDML_CHECK(patch > 0);
  const int64_t n = images.dim(0), c = images.dim(1), h = images.dim(2),
                w = images.dim(3);
  COMDML_REQUIRE(h % patch == 0 && w % patch == 0,
                 "image " << h << "x" << w << " not divisible into " << patch
                          << "x" << patch << " patches");
  const int64_t gh = h / patch, gw = w / patch;
  const int64_t patches = gh * gw;

  Tensor out(images.shape());
  auto src = images.flat();
  auto dst = out.flat();
  std::vector<int64_t> perm(static_cast<size_t>(patches));
  for (int64_t i = 0; i < n; ++i) {
    std::iota(perm.begin(), perm.end(), 0);
    rng.shuffle(perm);
    for (int64_t p = 0; p < patches; ++p) {
      const int64_t q = perm[static_cast<size_t>(p)];
      const int64_t py = (p / gw) * patch, px = (p % gw) * patch;
      const int64_t qy = (q / gw) * patch, qx = (q % gw) * patch;
      for (int64_t ch = 0; ch < c; ++ch) {
        const int64_t base = (i * c + ch) * h * w;
        for (int64_t y = 0; y < patch; ++y)
          for (int64_t x = 0; x < patch; ++x)
            dst[base + (py + y) * w + (px + x)] =
                src[base + (qy + y) * w + (qx + x)];
      }
    }
  }
  return out;
}

}  // namespace comdml::privacy
