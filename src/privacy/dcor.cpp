#include "privacy/dcor.hpp"

#include <cmath>
#include <vector>

namespace comdml::privacy {

namespace {

/// Pairwise Euclidean distance matrix of a [N, F] view, double-centered.
std::vector<double> centered_distances(const Tensor& t) {
  const int64_t n = t.dim(0);
  const int64_t f = t.size() / n;
  auto flat = t.flat();
  std::vector<double> d(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      double sq = 0.0;
      const float* a = flat.data() + i * f;
      const float* b = flat.data() + j * f;
      for (int64_t k = 0; k < f; ++k) {
        const double diff = double(a[k]) - b[k];
        sq += diff * diff;
      }
      const double dist = std::sqrt(sq);
      d[static_cast<size_t>(i * n + j)] = dist;
      d[static_cast<size_t>(j * n + i)] = dist;
    }
  }
  // Double centering: d_ij - rowmean_i - colmean_j + grandmean.
  std::vector<double> row(static_cast<size_t>(n), 0.0);
  double grand = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j)
      row[static_cast<size_t>(i)] += d[static_cast<size_t>(i * n + j)];
    grand += row[static_cast<size_t>(i)];
    row[static_cast<size_t>(i)] /= static_cast<double>(n);
  }
  grand /= static_cast<double>(n * n);
  for (int64_t i = 0; i < n; ++i)
    for (int64_t j = 0; j < n; ++j)
      d[static_cast<size_t>(i * n + j)] +=
          grand - row[static_cast<size_t>(i)] - row[static_cast<size_t>(j)];
  return d;
}

}  // namespace

double distance_correlation(const Tensor& x, const Tensor& z) {
  COMDML_REQUIRE(x.rank() >= 2 && z.rank() >= 2,
                 "distance_correlation expects batched tensors");
  COMDML_REQUIRE(x.dim(0) == z.dim(0),
                 "batch mismatch: " << x.dim(0) << " vs " << z.dim(0));
  const int64_t n = x.dim(0);
  COMDML_REQUIRE(n >= 2, "need at least 2 samples");
  const auto a = centered_distances(x);
  const auto b = centered_distances(z);
  double dcov = 0.0, dvar_a = 0.0, dvar_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dcov += a[i] * b[i];
    dvar_a += a[i] * a[i];
    dvar_b += b[i] * b[i];
  }
  const double denom = std::sqrt(dvar_a * dvar_b);
  if (denom <= 1e-30) return 0.0;
  const double r2 = dcov / denom;
  return r2 <= 0.0 ? 0.0 : std::sqrt(r2);
}

}  // namespace comdml::privacy
