// Differential-privacy mechanisms on model parameters (paper §V-B-4 uses
// Laplace noise with eps = 0.5, delta = 1e-5 before aggregation).
#pragma once

#include <span>

#include "tensor/random.hpp"

namespace comdml::privacy {

using tensor::Rng;
using tensor::Tensor;

/// Clip the *global* L2 norm of a tensor list to `max_norm`; returns the
/// scaling factor applied (1.0 if already within bounds).
double clip_l2(std::span<Tensor> tensors, float max_norm);

/// Laplace mechanism: adds Laplace(sensitivity / epsilon) noise per element.
void laplace_mechanism(std::span<Tensor> tensors, double epsilon,
                       double sensitivity, Rng& rng);

/// Gaussian mechanism: sigma = sensitivity * sqrt(2 ln(1.25/delta)) / eps.
void gaussian_mechanism(std::span<Tensor> tensors, double epsilon,
                        double delta, double sensitivity, Rng& rng);

/// Noise scale the Gaussian mechanism will use (exposed for tests).
[[nodiscard]] double gaussian_sigma(double epsilon, double delta,
                                    double sensitivity);

}  // namespace comdml::privacy
