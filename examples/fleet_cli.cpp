// fleet_cli — run any ComDML/baseline timing scenario from the command
// line. This is the "downstream user" entry point: pick a method, fleet
// size, dataset geometry, topology and partition, and get per-round timing
// plus time-to-target-accuracy.
//
//   ./examples/fleet_cli --method comdml --agents 20 --dataset cifar10
//       --partition iid --target 0.85 --topology 0.5 --rounds 50
#include <cstdio>
#include <cstring>
#include <string>

#include "baselines/baseline_fleet.hpp"
#include "core/trainer.hpp"

namespace {

using namespace comdml;
using learncurve::Method;
using learncurve::PartitionKind;

struct Args {
  std::string method = "comdml";
  std::string dataset = "cifar10";
  std::string partition = "iid";
  int64_t agents = 10;
  int64_t rounds = 30;
  double participation = 1.0;
  double topology = 1.0;  // link probability; 1.0 = full mesh
  double target = 0.8;
  double dropout = 0.0;
  uint64_t seed = 42;
};

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto need_value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (flag == "--method" && (v = need_value("--method"))) args.method = v;
    else if (flag == "--dataset" && (v = need_value("--dataset"))) args.dataset = v;
    else if (flag == "--partition" && (v = need_value("--partition"))) args.partition = v;
    else if (flag == "--agents" && (v = need_value("--agents"))) args.agents = std::stoll(v);
    else if (flag == "--rounds" && (v = need_value("--rounds"))) args.rounds = std::stoll(v);
    else if (flag == "--participation" && (v = need_value("--participation"))) args.participation = std::stod(v);
    else if (flag == "--topology" && (v = need_value("--topology"))) args.topology = std::stod(v);
    else if (flag == "--target" && (v = need_value("--target"))) args.target = std::stod(v);
    else if (flag == "--dropout" && (v = need_value("--dropout"))) args.dropout = std::stod(v);
    else if (flag == "--seed" && (v = need_value("--seed"))) args.seed = std::stoull(v);
    else if (flag == "--help") {
      std::printf(
          "usage: fleet_cli [--method comdml|fedavg|fedprox|gossip|"
          "braintorrent|allreduce]\n"
          "  [--dataset cifar10|cifar100|cinic10] [--partition iid|dirichlet]\n"
          "  [--agents N] [--rounds N] [--participation F] [--topology P]\n"
          "  [--target ACC] [--dropout P] [--seed N]\n");
      return false;
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", flag.c_str());
      return false;
    }
    if (v == nullptr && flag != "--help") return false;
  }
  return true;
}

Method parse_method(const std::string& name) {
  if (name == "comdml") return Method::kComDML;
  if (name == "fedavg") return Method::kFedAvg;
  if (name == "fedprox") return Method::kFedProx;
  if (name == "gossip") return Method::kGossip;
  if (name == "braintorrent") return Method::kBrainTorrent;
  if (name == "allreduce") return Method::kAllReduceDML;
  throw std::invalid_argument("unknown method " + name);
}

data::DatasetSpec parse_dataset(const std::string& name) {
  if (name == "cifar10") return data::cifar10_spec();
  if (name == "cifar100") return data::cifar100_spec();
  if (name == "cinic10") return data::cinic10_spec();
  throw std::invalid_argument("unknown dataset " + name);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return 1;

  try {
    const Method method = parse_method(args.method);
    const auto dspec = parse_dataset(args.dataset);
    const PartitionKind partition = args.partition == "iid"
                                        ? PartitionKind::kIID
                                        : PartitionKind::kDirichlet05;
    const auto mspec = nn::resnet56_spec(dspec.classes);

    tensor::Rng rng(args.seed);
    const auto profiles = sim::assign_profiles(args.agents, rng);
    auto topology =
        args.topology >= 1.0
            ? sim::Topology::full_mesh(profiles)
            : sim::Topology::random_graph(profiles, args.topology, rng);
    if (!topology.is_connected()) {
      std::fprintf(stderr,
                   "drawn topology is disconnected; raise --topology\n");
      return 1;
    }
    auto sizes =
        core::shard_sizes_for(dspec, args.agents, partition, rng);

    core::FleetConfig cfg;
    cfg.agents = args.agents;
    cfg.participation = args.participation;
    cfg.agent_dropout = args.dropout;
    cfg.max_split_points = 16;
    cfg.seed = args.seed;

    std::printf("method=%s dataset=%s partition=%s agents=%lld "
                "topology=%.2f seed=%llu\n",
                args.method.c_str(), args.dataset.c_str(),
                args.partition.c_str(), (long long)args.agents,
                args.topology, (unsigned long long)args.seed);
    std::printf("%6s %12s %10s %8s %8s\n", "round", "time(s)", "pairs",
                "dropped", "idle(s)");

    core::RunSummary summary;
    if (method == Method::kComDML) {
      core::SimulatedFleet fleet(mspec, cfg, std::move(topology),
                                 std::move(sizes));
      for (int64_t r = 0; r < args.rounds; ++r) {
        const auto rec = fleet.step();
        if (r < 10 || r % 10 == 0)
          std::printf("%6lld %12.1f %10lld %8lld %8.1f\n", (long long)r,
                      rec.round_time, (long long)rec.num_pairs,
                      (long long)rec.dropped_agents, rec.idle_time);
        summary.add(rec);
      }
    } else {
      baselines::BaselineFleet fleet(method, mspec, cfg,
                                     std::move(topology), std::move(sizes));
      for (int64_t r = 0; r < args.rounds; ++r) {
        const auto rec = fleet.step();
        if (r < 10 || r % 10 == 0)
          std::printf("%6lld %12.1f %10s %8s %8.1f\n", (long long)r,
                      rec.round_time, "-", "-", rec.idle_time);
        summary.add(rec);
      }
    }

    std::printf("\nmean round time: %.1fs\n", summary.mean_round_time());
    const std::string model_name = "resnet56";
    const auto curve = learncurve::make_accuracy_model(
        args.dataset, model_name, partition, method, args.participation);
    if (const auto rounds = curve.rounds_to(args.target)) {
      const double needed =
          *rounds * learncurve::fleet_rounds_factor(args.agents);
      std::printf("estimated rounds to %.0f%%: %.0f  ->  total %.0fs\n",
                  100 * args.target, needed,
                  summary.time_for_rounds(needed));
    } else {
      std::printf("target %.0f%% exceeds the calibrated ceiling\n",
                  100 * args.target);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
