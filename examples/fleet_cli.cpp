// fleet_cli — run any ComDML/baseline scenario from the command line
// through the unified core::FleetRuntime facade. This is the "downstream
// user" entry point: pick a method, fleet size, dataset geometry, topology
// and partition, and get per-round timing plus time-to-target-accuracy.
// Every method — ComDML and all five baselines — goes through the same
// FleetBuilder/FleetRuntime interface; the facade picks the right engine.
//
//   ./examples/fleet_cli --method comdml --agents 20 --dataset cifar10
//       --partition iid --target 0.85 --topology 0.5 --rounds 50
//
// `--real` switches from the paper-scale timing simulation to real tensor
// training on synthetic blobs (same facade, real-execution engines):
//
//   ./examples/fleet_cli --real --method fedavg --agents 6 --rounds 10
//
// `--connect <addr>` turns the CLI into a client of a running fleetd
// daemon — the same round table, driven over the wire:
//
//   ./examples/fleet_cli --connect unix:/tmp/fleet.sock --rounds 3 --shutdown
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/fault_spec.hpp"
#include "core/fleet_runtime.hpp"
#include "core/real_fleet.hpp"
#include "daemon/fleetd.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "nn/module.hpp"

namespace {

using namespace comdml;
using learncurve::Method;
using learncurve::PartitionKind;

struct Args {
  std::string method = "comdml";
  std::string dataset = "cifar10";
  std::string partition = "iid";
  int64_t agents = 10;
  int64_t rounds = 30;
  double participation = 1.0;
  double topology = 1.0;  // link probability; 1.0 = full mesh
  double target = 0.8;
  double dropout = 0.0;
  bool real = false;
  /// Bucketed/overlapped aggregation (real mode): state bucket size in
  /// bytes (0 = one flat collective), whether bucket collectives overlap
  /// the compute tail, the bucket wire codec, and error feedback.
  int64_t bucket_bytes = 0;
  bool overlap = false;
  std::string codec = "fp32";  // fp32 | quantized
  bool error_feedback = true;
  uint64_t seed = 42;
  /// Injected agent failures, "A@R[:bN|:kN|:cS]" specs (real ComDML mode).
  std::vector<std::string> fail_agents;
  /// Unreliable-network / straggler / autonomy knobs (real ComDML mode).
  double drop_prob = 0.0;
  double deadline_ms = 0.0;
  int64_t checkpoint_every = 0;
  std::string checkpoint_dir;
  /// Durable state: write a checkpoint after the run / load one before it.
  std::string checkpoint_path;
  std::string restore_path;
  /// Quorum shards: per-worker shard files to assemble a fleet from
  /// (local mode), or the directory workers write their shards into
  /// (client mode).
  std::vector<std::string> restore_shards;
  std::string shard_dir;
  /// Client mode: drive a running fleetd daemon instead of a local fleet.
  std::string connect;
  double connect_timeout_sec = 30.0;
  /// Local mode: build the fleetd FleetSpec fleet (uniform profiles) so a
  /// single-process run is bit-comparable with a multi-process one.
  bool uniform = false;
  /// Per-agent compute multipliers for the spec fleet (with --uniform),
  /// matching a fleetd coordinator started with the same --scale.
  std::string scale_csv;
  /// Write the final consensus weights (tensor::pack_tensors blob) here.
  std::string weights_out;
  bool print_stats = false;  ///< client mode: print merged transport stats
  bool shutdown = false;     ///< client mode: stop the daemon afterwards
};

bool parse(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto need_value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", name);
        return nullptr;
      }
      return argv[++i];
    };
    const char* v = nullptr;
    if (flag == "--method" && (v = need_value("--method"))) args.method = v;
    else if (flag == "--dataset" && (v = need_value("--dataset"))) args.dataset = v;
    else if (flag == "--partition" && (v = need_value("--partition"))) args.partition = v;
    else if (flag == "--agents" && (v = need_value("--agents"))) args.agents = std::stoll(v);
    else if (flag == "--rounds" && (v = need_value("--rounds"))) args.rounds = std::stoll(v);
    else if (flag == "--participation" && (v = need_value("--participation"))) args.participation = std::stod(v);
    else if (flag == "--topology" && (v = need_value("--topology"))) args.topology = std::stod(v);
    else if (flag == "--target" && (v = need_value("--target"))) args.target = std::stod(v);
    else if (flag == "--dropout" && (v = need_value("--dropout"))) args.dropout = std::stod(v);
    else if (flag == "--seed" && (v = need_value("--seed"))) args.seed = std::stoull(v);
    else if (flag == "--real") { args.real = true; continue; }
    else if (flag == "--bucket-bytes" && (v = need_value("--bucket-bytes"))) args.bucket_bytes = std::stoll(v);
    else if (flag == "--overlap") { args.overlap = true; continue; }
    else if (flag == "--codec" && (v = need_value("--codec"))) {
      args.codec = v;
      if (args.codec != "fp32" && args.codec != "quantized") {
        std::fprintf(stderr, "unknown codec %s (fp32 | quantized)\n", v);
        return false;
      }
    }
    else if (flag == "--no-error-feedback") { args.error_feedback = false; continue; }
    else if (flag == "--fail-agent" && (v = need_value("--fail-agent"))) {
      core::FleetOptions::FaultOptions::AgentFailure probe;
      std::string why;
      if (!core::parse_fault_spec(v, probe, &why)) {
        std::fprintf(stderr,
                     "bad --fail-agent spec '%s': %s\n"
                     "usage: --fail-agent A@R[:bN|:kN|:cS]\n", v,
                     why.c_str());
        return false;
      }
      args.fail_agents.push_back(v);
    }
    else if (flag == "--drop-prob" && (v = need_value("--drop-prob"))) args.drop_prob = std::stod(v);
    else if (flag == "--deadline-ms" && (v = need_value("--deadline-ms"))) args.deadline_ms = std::stod(v);
    else if (flag == "--checkpoint-every" && (v = need_value("--checkpoint-every"))) args.checkpoint_every = std::stoll(v);
    else if (flag == "--checkpoint-dir" && (v = need_value("--checkpoint-dir"))) args.checkpoint_dir = v;
    else if (flag == "--checkpoint" && (v = need_value("--checkpoint"))) args.checkpoint_path = v;
    else if (flag == "--restore" && (v = need_value("--restore"))) args.restore_path = v;
    else if (flag == "--restore-shard" && (v = need_value("--restore-shard"))) args.restore_shards.push_back(v);
    else if (flag == "--shard-checkpoint" && (v = need_value("--shard-checkpoint"))) args.shard_dir = v;
    else if (flag == "--connect" && (v = need_value("--connect"))) args.connect = v;
    else if (flag == "--connect-timeout-sec" && (v = need_value("--connect-timeout-sec"))) args.connect_timeout_sec = std::stod(v);
    else if (flag == "--uniform") { args.uniform = true; continue; }
    else if (flag == "--scale" && (v = need_value("--scale"))) args.scale_csv = v;
    else if (flag == "--weights-out" && (v = need_value("--weights-out"))) args.weights_out = v;
    else if (flag == "--stats") { args.print_stats = true; continue; }
    else if (flag == "--shutdown") { args.shutdown = true; continue; }
    else if (flag == "--help") {
      std::printf(
          "usage: fleet_cli [--method comdml|fedavg|fedprox|gossip|"
          "braintorrent|allreduce]\n"
          "  [--dataset cifar10|cifar100|cinic10] [--partition iid|dirichlet]\n"
          "  [--agents N] [--rounds N] [--participation F] [--topology P]\n"
          "  [--target ACC] [--dropout P] [--seed N] [--real]\n"
          "  [--bucket-bytes N] [--overlap]   (real mode: bucketed /\n"
          "   overlapped aggregation through the round pipeline)\n"
          "  [--codec fp32|quantized] [--no-error-feedback]   (bucket wire\n"
          "   codec: quantized ships dense int8 payloads ~4x smaller;\n"
          "   error feedback carries the quantization error across rounds)\n"
          "  [--fail-agent A@R[:bN|:kN|:cS]]   (real comdml: agent A leaves\n"
          "   before round R, or dies after N batches (:bN), after\n"
          "   publishing N buckets (:kN), or at collective step S (:cS);\n"
          "   repeatable)\n"
          "  [--drop-prob P]   (real comdml + --bucket-bytes: drop each\n"
          "   aggregation message with probability P; the collectives\n"
          "   retransmit with backoff — tune via COMDML_RETRY_MAX and\n"
          "   COMDML_BACKOFF_BASE_MS)\n"
          "  [--deadline-ms MS]   (real comdml + --bucket-bytes: defer solo\n"
          "   stragglers whose round would outlast MS; their late update\n"
          "   rides the error-feedback residual into the next round)\n"
          "  [--checkpoint-every N] [--checkpoint-dir DIR]   (real comdml:\n"
          "   write a checksummed checkpoint to DIR every N rounds, keeping\n"
          "   the newest two)\n"
          "  [--checkpoint PATH] [--restore PATH]   (real comdml: save the\n"
          "   fleet state after the run / resume from a saved state)\n"
          "  [--restore-shard PATH]   (real comdml, repeatable: assemble the\n"
          "   fleet from per-worker quorum shards before the run; agents\n"
          "   missing from the shards come up as left)\n"
          "  [--connect ADDR]   (client mode: drive a running fleetd at\n"
          "   unix:/path.sock or tcp:host:port instead of a local fleet;\n"
          "   combine with --rounds, --weights-out, --stats, --shutdown)\n"
          "  [--connect-timeout-sec S]   (client mode: give up dialing the\n"
          "   coordinator after S seconds; a stale unix socket fails fast)\n"
          "  [--shard-checkpoint DIR]   (client mode: every live worker\n"
          "   writes its owned-agent shard into DIR after the rounds)\n"
          "  [--uniform]   (real comdml: build the fleetd FleetSpec fleet —\n"
          "   uniform resource profiles — so this single-process run is\n"
          "   bit-comparable with a fleetd multi-process run)\n"
          "  [--scale F,F,...]   (with --uniform: per-agent compute\n"
          "   multipliers, matching a fleetd started with the same --scale)\n"
          "  [--weights-out PATH]   (write the final consensus weights as a\n"
          "   raw tensor blob; works locally and in client mode)\n");
      return false;
    } else {
      std::fprintf(stderr, "unknown flag %s (try --help)\n", flag.c_str());
      return false;
    }
    if (v == nullptr && flag != "--help") return false;
  }
  return true;
}

Method parse_method(const std::string& name) {
  if (name == "comdml") return Method::kComDML;
  if (name == "fedavg") return Method::kFedAvg;
  if (name == "fedprox") return Method::kFedProx;
  if (name == "gossip") return Method::kGossip;
  if (name == "braintorrent") return Method::kBrainTorrent;
  if (name == "allreduce") return Method::kAllReduceDML;
  throw std::invalid_argument("unknown method " + name);
}

data::DatasetSpec parse_dataset(const std::string& name) {
  if (name == "cifar10") return data::cifar10_spec();
  if (name == "cifar100") return data::cifar100_spec();
  if (name == "cinic10") return data::cinic10_spec();
  throw std::invalid_argument("unknown dataset " + name);
}

/// Paper-scale timing simulation through the facade.
core::FleetRuntime build_simulated(const Args& args, Method method,
                                   sim::Topology topology,
                                   std::vector<int64_t> sizes) {
  core::FleetOptions opt = core::FleetOptions::paper_defaults();
  opt.seed = args.seed;
  opt.scale.participation = args.participation;
  opt.scale.agent_dropout = args.dropout;
  opt.scale.max_split_points = 16;
  return core::FleetBuilder()
      .method(method)
      .options(opt)
      .topology(std::move(topology))
      .architecture(nn::resnet56_spec(parse_dataset(args.dataset).classes))
      .shard_sizes(std::move(sizes))
      .build();
}

/// Real tensor training on synthetic blobs through the same facade.
core::FleetRuntime build_real(const Args& args, Method method,
                              sim::Topology topology,
                              data::Dataset* eval_out) {
  constexpr int64_t kClasses = 3, kFeatures = 6, kPerAgent = 60;
  tensor::Rng rng(args.seed + 1);
  const auto ds = data::make_blobs(args.agents * kPerAgent, kClasses,
                                   kFeatures, 0.3f, rng);
  const auto parts = data::iid_partition(ds.size(), args.agents, rng);
  std::vector<data::Dataset> shards;
  for (const auto& idx : parts) shards.push_back(ds.subset(idx));
  *eval_out = shards[0];

  core::FleetOptions opt;
  opt.seed = args.seed;
  opt.train.batches_per_round = 6;
  opt.train.sgd.lr = 0.08f;
  opt.comms.bucket_bytes = args.bucket_bytes;
  opt.comms.overlap = args.overlap;
  if (args.codec == "quantized") {
    opt.comms.codec = core::FleetOptions::CommOptions::Codec::kInt8Quantized;
  } else if (args.codec != "fp32") {
    throw std::invalid_argument("unknown codec " + args.codec +
                                " (fp32 | quantized)");
  }
  opt.comms.error_feedback = args.error_feedback;
  for (const std::string& spec : args.fail_agents) {
    core::FleetOptions::FaultOptions::AgentFailure f;
    if (core::parse_fault_spec(spec, f)) opt.faults.failures.push_back(f);
  }
  if (!opt.faults.failures.empty() && method != Method::kComDML) {
    std::fprintf(stderr,
                 "note: --fail-agent only affects the real comdml fleet; "
                 "%s runs without fault injection\n", args.method.c_str());
    opt.faults.failures.clear();
  }
  opt.faults.message_drop_prob = args.drop_prob;
  opt.faults.deadline_sec = args.deadline_ms * 1e-3;
  opt.faults.checkpoint_every = args.checkpoint_every;
  opt.faults.checkpoint_dir = args.checkpoint_dir;
  if ((args.drop_prob > 0.0 || args.deadline_ms > 0.0 ||
       args.checkpoint_every > 0) &&
      method != Method::kComDML) {
    std::fprintf(stderr,
                 "note: --drop-prob/--deadline-ms/--checkpoint-every only "
                 "affect the real comdml fleet; %s runs without them\n",
                 args.method.c_str());
    opt.faults.message_drop_prob = 0.0;
    opt.faults.deadline_sec = 0.0;
    opt.faults.checkpoint_every = 0;
    opt.faults.checkpoint_dir.clear();
  }
  if (args.bucket_bytes > 0 && method != Method::kComDML &&
      method != Method::kAllReduceDML) {
    std::fprintf(stderr,
                 "note: --bucket-bytes/--overlap only affect methods that "
                 "aggregate through an allreduce (comdml, allreduce); "
                 "%s runs its normal aggregation\n",
                 args.method.c_str());
  }
  core::ModelFactory factory = [](tensor::Rng& r) {
    return nn::mlp({kFeatures, 24, 24, kClasses}, r);
  };
  return core::FleetBuilder()
      .method(method)
      .options(opt)
      .topology(std::move(topology))
      .model(factory, kClasses)
      .shards(std::move(shards))
      .build();
}

bool write_blob(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return false;
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return true;
}

/// Parse "1.0,0.35,1.0" into per-agent compute multipliers.
std::vector<double> parse_scales(const std::string& csv) {
  std::vector<double> scales;
  size_t pos = 0;
  while (pos <= csv.size()) {
    const size_t comma = csv.find(',', pos);
    const std::string item =
        csv.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (item.empty()) throw std::invalid_argument("empty --scale entry");
    scales.push_back(std::stod(item));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return scales;
}

/// Client mode: drive a running fleetd daemon round by round.
int run_client(const Args& args) {
  daemon::FleetClient client(args.connect, args.connect_timeout_sec);
  std::printf("connected to fleetd at %s: %lld agents across %lld workers\n",
              args.connect.c_str(), (long long)client.agents(),
              (long long)client.workers());
  std::printf("%6s %12s %10s %8s %10s %10s\n", "round", "time(s)", "pairs",
              "dropped", "agg(B)", "loss");
  double total_seconds = 0.0;
  for (int64_t r = 0; r < args.rounds; ++r) {
    const core::RoundReport rep = client.round();
    total_seconds += rep.round_seconds;
    if (r < 10 || r % 10 == 0)
      std::printf("%6lld %12.2f %10lld %8lld %10lld %10.4f\n",
                  (long long)rep.round, rep.round_seconds,
                  (long long)rep.num_pairs, (long long)rep.dropped_agents,
                  (long long)rep.aggregation_bytes, rep.mean_loss);
  }
  if (args.rounds > 0)
    std::printf("\nmean round time: %.2fs\n",
                total_seconds / static_cast<double>(args.rounds));
  if (args.print_stats) {
    const comm::TransportStats stats = client.stats();
    std::printf("last-round transport: %lld messages, %lld wire bytes, "
                "%.4fs collective\n",
                (long long)stats.messages, (long long)stats.total_wire_bytes,
                stats.seconds);
  }
  if (!args.weights_out.empty()) {
    const std::vector<uint8_t> blob = client.weights();
    if (!write_blob(args.weights_out, blob)) return 1;
    std::printf("weights (%zu bytes) written to %s\n", blob.size(),
                args.weights_out.c_str());
  }
  if (!args.checkpoint_path.empty()) {
    const std::vector<uint8_t> blob = client.checkpoint();
    if (!write_blob(args.checkpoint_path, blob)) return 1;
    std::printf("checkpoint (%zu bytes) written to %s\n", blob.size(),
                args.checkpoint_path.c_str());
  }
  if (!args.shard_dir.empty()) {
    const std::vector<std::string> paths =
        client.shard_checkpoint(args.shard_dir);
    std::printf("quorum checkpoint: %zu shard(s) in %s\n", paths.size(),
                args.shard_dir.c_str());
    for (const std::string& p : paths) std::printf("  %s\n", p.c_str());
  }
  if (args.shutdown) {
    client.shutdown();
    std::printf("fleetd shut down\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return 1;

  try {
    if (!args.connect.empty()) return run_client(args);
    const Method method = parse_method(args.method);
    const PartitionKind partition = args.partition == "iid"
                                        ? PartitionKind::kIID
                                        : PartitionKind::kDirichlet05;

    tensor::Rng rng(args.seed);
    const auto profiles = sim::assign_profiles(args.agents, rng);
    auto topology =
        args.topology >= 1.0
            ? sim::Topology::full_mesh(profiles)
            : sim::Topology::random_graph(profiles, args.topology, rng);
    if (!topology.is_connected()) {
      std::fprintf(stderr,
                   "drawn topology is disconnected; raise --topology\n");
      return 1;
    }

    std::printf("method=%s mode=%s dataset=%s partition=%s agents=%lld "
                "topology=%.2f seed=%llu\n",
                args.method.c_str(), args.real ? "real" : "simulated",
                args.dataset.c_str(), args.partition.c_str(),
                (long long)args.agents, args.topology,
                (unsigned long long)args.seed);

    if (args.uniform && (!args.real || method != Method::kComDML)) {
      std::fprintf(stderr, "error: --uniform needs --real --method comdml\n");
      return 1;
    }
    data::Dataset eval_set;
    auto sizes = core::shard_sizes_for(parse_dataset(args.dataset),
                                       args.agents, partition, rng);
    core::FleetRuntime fleet = [&] {
      if (args.uniform) {
        // The exact fleet a fleetd spec with these agents/seed builds.
        daemon::FleetSpec spec;
        spec.agents = args.agents;
        spec.seed = args.seed;
        if (!args.scale_csv.empty())
          spec.compute_scales = parse_scales(args.scale_csv);
        return daemon::build_spec_fleet(spec, &eval_set);
      }
      return args.real
                 ? build_real(args, method, std::move(topology), &eval_set)
                 : build_simulated(args, method, std::move(topology),
                                   std::move(sizes));
    }();

    const bool durable =
        (args.real || args.uniform) && method == Method::kComDML;
    if ((!args.checkpoint_path.empty() || !args.restore_path.empty() ||
         !args.restore_shards.empty()) &&
        !durable) {
      std::fprintf(stderr, "error: --checkpoint/--restore/--restore-shard "
                           "need --real --method comdml\n");
      return 1;
    }
    if (!args.restore_shards.empty()) {
      std::vector<std::vector<uint8_t>> blobs;
      for (const std::string& path : args.restore_shards) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
          std::fprintf(stderr, "error: cannot read shard %s\n",
                       path.c_str());
          return 1;
        }
        blobs.emplace_back((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
      }
      try {
        fleet.restore_shards(blobs);
      } catch (const core::CheckpointError& e) {
        std::fprintf(stderr,
                     "error: shard set is unusable: %s\n"
                     "(a shard is truncated, corrupted, or the shards come "
                     "from different checkpoints; gather a consistent "
                     "quorum and retry)\n",
                     e.what());
        return 1;
      }
      std::printf("restored %zu shard(s); %zu live agent(s), resuming at "
                  "round %lld\n",
                  blobs.size(), fleet.live_agents().size(),
                  (long long)fleet.rounds_executed());
    }
    if (!args.restore_path.empty()) {
      std::ifstream in(args.restore_path, std::ios::binary);
      if (!in) {
        std::fprintf(stderr, "error: cannot read %s\n",
                     args.restore_path.c_str());
        return 1;
      }
      const std::vector<uint8_t> bytes(
          (std::istreambuf_iterator<char>(in)),
          std::istreambuf_iterator<char>());
      try {
        fleet.restore(bytes);
      } catch (const core::CheckpointError& e) {
        std::fprintf(stderr,
                     "error: checkpoint %s is unusable: %s\n"
                     "(the file is truncated, corrupted, or from an "
                     "incompatible fleet; restart from scratch or pick an "
                     "older checkpoint)\n",
                     args.restore_path.c_str(), e.what());
        return 1;
      }
      std::printf("restored fleet state from %s (resuming at round %lld)\n",
                  args.restore_path.c_str(),
                  (long long)fleet.rounds_executed());
    }

    std::printf("%6s %12s %10s %8s %10s %10s\n", "round", "time(s)",
                "pairs", "dropped", "agg(B)", "loss");
    core::RunReport report;
    for (int64_t r = 0; r < args.rounds; ++r) {
      const auto rep = fleet.step();
      if (r < 10 || r % 10 == 0) {
        std::printf("%6lld %12.2f %10lld %8lld %10lld ", (long long)r,
                    rep.round_seconds, (long long)rep.num_pairs,
                    (long long)rep.dropped_agents,
                    (long long)rep.aggregation_bytes);
        if (fleet.real())
          std::printf("%10.4f\n", rep.mean_loss);
        else
          std::printf("%10s\n", "-");
      }
      report.rounds.push_back(rep);
    }
    if (args.rounds > 0)
      std::printf("\nmean round time: %.2fs\n",
                  report.mean_round_seconds());

    if (!args.checkpoint_path.empty()) {
      const auto bytes = fleet.checkpoint();
      if (!write_blob(args.checkpoint_path, bytes)) return 1;
      std::printf("checkpoint (%zu bytes) written to %s\n", bytes.size(),
                  args.checkpoint_path.c_str());
    }

    if (!args.weights_out.empty()) {
      if (!fleet.real()) {
        std::fprintf(stderr, "error: --weights-out needs --real (the "
                             "simulators train no tensors)\n");
        return 1;
      }
      const int64_t agent =
          method == Method::kComDML ? fleet.live_agents().front() : 0;
      const auto blob = tensor::pack_tensors(nn::state_of(fleet.model(agent)));
      if (!write_blob(args.weights_out, blob)) return 1;
      std::printf("weights (%zu bytes) written to %s\n", blob.size(),
                  args.weights_out.c_str());
    }

    if (fleet.real()) {
      std::printf("accuracy on shard-0 data after %lld rounds: %.3f\n",
                  (long long)args.rounds, fleet.evaluate(eval_set));
      return 0;
    }
    const std::string model_name = "resnet56";
    const auto curve = learncurve::make_accuracy_model(
        args.dataset, model_name, partition, method, args.participation);
    if (const auto rounds = curve.rounds_to(args.target)) {
      const double needed =
          *rounds * learncurve::fleet_rounds_factor(args.agents);
      std::printf("estimated rounds to %.0f%%: %.0f  ->  total %.0fs\n",
                  100 * args.target, needed,
                  report.time_for_rounds(needed));
    } else {
      std::printf("target %.0f%% exceeds the calibrated ceiling\n",
                  100 * args.target);
    }
  } catch (const daemon::CoordinatorUnreachable& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
