// Heterogeneous fleet walkthrough (the paper's Table II setting, scaled to
// one executable): a 10-agent simulated fleet with the paper's CPU/link
// profiles trains ResNet-56 on CIFAR-10 geometry; we compare ComDML's
// balanced rounds against every baseline and show where the savings come
// from (idle time reclaimed by offloading).
//
//   ./examples/heterogeneous_fleet
#include <cstdio>

#include "core/fleet_runtime.hpp"

int main() {
  using namespace comdml;
  using learncurve::Method;

  tensor::Rng rng(7);
  const auto spec = nn::resnet56_spec();
  const auto profiles = sim::assign_profiles(10, rng);
  auto topology = sim::Topology::full_mesh(profiles);
  auto sizes = core::shard_sizes_for(data::cifar10_spec(), 10,
                                     learncurve::PartitionKind::kIID, rng);

  std::printf("agent | cpu  | link (Mbps) | shard\n");
  for (int64_t i = 0; i < 10; ++i)
    std::printf("%5lld | %4.1f | %11.0f | %lld\n", static_cast<long long>(i),
                topology.profile(i).cpu, topology.profile(i).mbps,
                static_cast<long long>(sizes[static_cast<size_t>(i)]));

  // Every method — ComDML included — runs through the same FleetRuntime
  // facade; only the Method enum changes.
  core::FleetOptions opt = core::FleetOptions::paper_defaults();
  opt.scale.reshuffle_period = 0;
  opt.scale.max_split_points = 16;
  const auto make_fleet = [&](Method m) {
    return core::FleetBuilder()
        .method(m)
        .options(opt)
        .topology(topology)
        .architecture(spec)
        .shard_sizes(sizes)
        .build();
  };

  auto comdml = make_fleet(Method::kComDML);
  const auto rec = comdml.step();
  std::printf("\nComDML round: %.1fs (%lld pairs; without balancing the "
              "same round takes %.1fs)\n",
              rec.round_seconds, static_cast<long long>(rec.num_pairs),
              rec.unbalanced_seconds);
  std::printf("idle time reclaimed: %.1fs across the fleet\n",
              rec.unbalanced_seconds * 10 - rec.idle_seconds);

  std::printf("\nper-method mean round time over 20 rounds:\n");
  for (const Method m : {Method::kComDML, Method::kGossip,
                         Method::kBrainTorrent, Method::kAllReduceDML,
                         Method::kFedAvg, Method::kFedProx}) {
    std::printf("  %-22s %8.1fs\n", learncurve::method_name(m).c_str(),
                make_fleet(m).run(20).mean_round_seconds());
  }
  std::printf("\nComDML's rounds are shorter because slow agents ship the "
              "deep half of the model\n(and its gradient work) to idle fast "
              "agents instead of stalling the fleet.\n");
  return 0;
}
