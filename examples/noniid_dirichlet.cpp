// Non-IID data walkthrough: Dirichlet(0.5) label-skew partitioning (the
// paper's non-IID variants) on a real dataset, its effect on per-agent
// label mixes, and a real ComDML training comparison IID vs non-IID.
//
//   ./examples/noniid_dirichlet
#include <cstdio>

#include "core/fleet_runtime.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"

namespace {

using namespace comdml;

float train_fleet(const std::vector<data::Dataset>& shards,
                  const data::Dataset& eval, int rounds) {
  std::vector<sim::ResourceProfile> profiles{
      {4.0, 100.0}, {0.5, 100.0}, {2.0, 100.0}, {0.2, 100.0}};
  core::ModelFactory factory = [](tensor::Rng& r) {
    return nn::mlp({16, 32, 32, 4}, r);
  };
  core::FleetOptions options;
  options.train.batch_size = 16;
  options.train.batches_per_round = 4;
  options.train.sgd.lr = 0.05f;
  auto fleet = core::FleetBuilder()
                   .method(learncurve::Method::kComDML)
                   .options(options)
                   .topology(sim::Topology::full_mesh(profiles))
                   .model(factory, 4)
                   .shards(shards)
                   .build();
  for (int r = 0; r < rounds; ++r) (void)fleet.step();
  return fleet.evaluate(eval);
}

}  // namespace

int main() {
  tensor::Rng rng(11);
  const auto dataset = data::make_blobs(480, 4, 16, 0.35f, rng);

  // IID split vs Dirichlet(0.5) label-skew split across 4 agents.
  const auto iid = data::iid_partition(dataset.size(), 4, rng);
  const auto skew =
      data::dirichlet_label_partition(dataset.labels, 4, 0.5, rng, 8);

  std::printf("label histograms per agent (4 classes):\n");
  const auto hi = data::label_histograms(dataset.labels, iid, 4);
  const auto hs = data::label_histograms(dataset.labels, skew, 4);
  for (size_t a = 0; a < 4; ++a) {
    std::printf("  agent %zu  IID: [%3lld %3lld %3lld %3lld]   "
                "Dirichlet(0.5): [%3lld %3lld %3lld %3lld]\n",
                a, (long long)hi[a][0], (long long)hi[a][1],
                (long long)hi[a][2], (long long)hi[a][3],
                (long long)hs[a][0], (long long)hs[a][1],
                (long long)hs[a][2], (long long)hs[a][3]);
  }
  std::printf("label skew (mean total-variation): IID %.3f vs Dirichlet "
              "%.3f\n\n",
              data::label_skew(dataset.labels, iid, 4),
              data::label_skew(dataset.labels, skew, 4));

  auto to_shards = [&](const data::Partition& parts) {
    std::vector<data::Dataset> shards;
    for (const auto& idx : parts) shards.push_back(dataset.subset(idx));
    return shards;
  };

  const float acc_iid = train_fleet(to_shards(iid), dataset, 20);
  const float acc_skew = train_fleet(to_shards(skew), dataset, 20);
  std::printf("ComDML accuracy after 20 rounds:  IID %.1f%%   non-IID "
              "%.1f%%\n",
              100.0 * acc_iid, 100.0 * acc_skew);
  std::printf("label skew slows convergence (the paper's non-IID rows "
              "need more rounds for a\ngiven target), but decentralized "
              "aggregation still reaches a shared model.\n");
  return acc_iid > 0.7f ? 0 : 1;
}
