// Privacy integration (paper SecV-B-4): run real ComDML training with each
// privacy technique — patch shuffling on inputs, Laplace DP on shared
// parameters — and measure the distance correlation between raw inputs and
// the activations that cross the split, the leakage metric NoPeek-style
// defences target.
//
//   ./examples/privacy_training
#include <cstdio>

#include "core/fleet_runtime.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "privacy/dcor.hpp"
#include "privacy/patch_shuffle.hpp"

int main() {
  using namespace comdml;
  using learncurve::PrivacyTechnique;

  tensor::Rng rng(23);
  const auto dataset =
      data::make_synthetic_images(256, 4, {3, 8, 8}, 0.35f, rng);
  const auto parts = data::iid_partition(dataset.size(), 4, rng);

  const struct {
    const char* label;
    PrivacyTechnique technique;
  } rows[] = {
      {"no privacy", PrivacyTechnique::kNone},
      {"patch shuffling (2x2)", PrivacyTechnique::kPatchShuffle},
      {"differential privacy", PrivacyTechnique::kDifferentialPrivacy},
  };

  std::printf("%-24s %10s %12s\n", "technique", "accuracy", "cut dCor");
  for (const auto& row : rows) {
    std::vector<data::Dataset> shards;
    for (const auto& idx : parts) shards.push_back(dataset.subset(idx));
    std::vector<sim::ResourceProfile> profiles{
        {4.0, 100.0}, {0.2, 100.0}, {2.0, 100.0}, {0.3, 100.0}};
    core::ModelFactory factory = [](tensor::Rng& r) {
      return nn::small_cnn(3, 4, r);
    };
    core::FleetOptions options;
    options.train.batch_size = 16;
    options.train.batches_per_round = 4;
    options.privacy.technique = row.technique;
    options.privacy.dp_epsilon = 2.0;
    options.privacy.dp_sensitivity = 1e-4;
    options.privacy.shuffle_patch = 2;
    auto fleet = core::FleetBuilder()
                     .method(learncurve::Method::kComDML)
                     .options(options)
                     .topology(sim::Topology::full_mesh(profiles))
                     .model(factory, 4)
                     .shards(std::move(shards))
                     .build();
    double dcor = 0.0;
    int dcor_rounds = 0;
    for (int r = 0; r < 15; ++r) {
      const auto stats = fleet.step();
      if (stats.mean_dcor > 0.0) {
        dcor += stats.mean_dcor;
        ++dcor_rounds;
      }
    }
    const float acc = fleet.evaluate(dataset);
    std::printf("%-24s %9.1f%% %12.3f\n", row.label, 100.0 * acc,
                dcor_rounds ? dcor / dcor_rounds : 0.0);
  }

  // Direct leakage demonstration: shuffling decorrelates the raw image
  // from what an eavesdropper sees on the wire.
  tensor::Rng srng(29);
  const auto shuffled = privacy::patch_shuffle(dataset.images, 2, srng);
  std::printf("\ndCor(raw images, patch-shuffled images) = %.3f (1.0 means "
              "fully recoverable)\n",
              privacy::distance_correlation(dataset.images, shuffled));
  std::printf("privacy techniques trade a little accuracy for lower "
              "input-activation correlation,\nmatching the paper's "
              "\"minimal impact\" claim.\n");
  return 0;
}
