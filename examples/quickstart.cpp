// Quickstart: the smallest complete ComDML run.
//
// Two agents — one slow, one fast — train a small CNN on synthetic images
// with real local-loss split training, decentralized pairing and a real
// message-level AllReduce, then we evaluate the shared model.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/fleet_runtime.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"

int main() {
  using namespace comdml;
  tensor::Rng rng(1);

  // 1. Data: a 3x8x8 synthetic image classification task, split IID
  //    between the two agents.
  const auto dataset = data::make_synthetic_images(
      /*samples=*/192, /*classes=*/3, {3, 8, 8}, /*noise=*/0.4f, rng);
  const auto parts = data::iid_partition(dataset.size(), 2, rng);
  std::vector<data::Dataset> shards{dataset.subset(parts[0]),
                                    dataset.subset(parts[1])};

  // 2. Fleet: agent 0 has 0.2 CPU, agent 1 has 4 CPUs, 100 Mbps link.
  std::vector<sim::ResourceProfile> profiles{{0.2, 100.0}, {4.0, 100.0}};
  auto topology = sim::Topology::full_mesh(profiles);

  // 3. ComDML: the factory builds one model replica per agent.
  core::ModelFactory factory = [](tensor::Rng& r) {
    return nn::small_cnn(3, 3, r);
  };
  core::FleetOptions options;
  options.train.batch_size = 16;
  options.train.batches_per_round = 4;
  options.train.sgd.lr = 0.05f;
  auto fleet = core::FleetBuilder()
                   .method(learncurve::Method::kComDML)
                   .options(options)
                   .topology(std::move(topology))
                   .model(factory, /*classes=*/3)
                   .shards(std::move(shards))
                   .build();

  std::printf("round | pairs | slow-side loss | fleet loss | sim time\n");
  for (int round = 0; round < 12; ++round) {
    const auto stats = fleet.step();
    std::printf("%5d | %5lld | %14.3f | %10.3f | %7.2fs\n", round,
                static_cast<long long>(stats.num_pairs),
                stats.mean_slow_loss, stats.mean_loss,
                stats.round_seconds);
  }

  const float accuracy = fleet.evaluate(dataset);
  std::printf("\nshared model accuracy on the full dataset: %.1f%%\n",
              100.0 * accuracy);
  std::printf("the slow agent offloaded its deeper layers to the fast "
              "agent every round (pairs > 0),\nwhile aggregation used "
              "recursive-halving/doubling AllReduce.\n");
  return accuracy > 0.6f ? 0 : 1;
}
