// Topology resilience (the paper's SecV-B-5 / Fig. 3 theme): the same
// 50-agent fleet simulated on a full mesh, sparse random graphs, and a
// ring; ComDML keeps balancing wherever links allow and falls back to
// independent training when they do not.
//
//   ./examples/topology_resilience
#include <cstdio>

#include "core/fleet_runtime.hpp"

int main() {
  using namespace comdml;

  const auto spec = nn::resnet56_spec();
  tensor::Rng rng(13);
  const auto profiles = sim::assign_profiles(50, rng);
  auto sizes = core::shard_sizes_for(data::cifar10_spec(), 50,
                                     learncurve::PartitionKind::kIID, rng);

  core::FleetOptions opt = core::FleetOptions::paper_defaults();
  opt.seed = 13;
  opt.scale.reshuffle_period = 0;
  opt.scale.max_split_points = 16;

  const struct {
    const char* label;
    double p;  // link probability; <0 means ring
  } topologies[] = {
      {"full mesh", 1.0},
      {"random, 50% links", 0.5},
      {"random, 20% links (Fig. 3)", 0.2},
      {"random, 10% links", 0.1},
      {"ring", -1.0},
  };

  std::printf("%-28s %10s %8s %14s\n", "topology", "round(s)", "pairs",
              "vs unbalanced");
  for (const auto& t : topologies) {
    tensor::Rng trng(17);
    auto topo = t.p < 0
                    ? sim::Topology::ring(profiles)
                    : (t.p >= 1.0
                           ? sim::Topology::full_mesh(profiles)
                           : sim::Topology::random_graph(profiles, t.p,
                                                         trng));
    if (!topo.is_connected()) {
      std::printf("%-28s   (disconnected draw; skipped)\n", t.label);
      continue;
    }
    auto fleet = core::FleetBuilder()
                     .method(learncurve::Method::kComDML)
                     .options(opt)
                     .topology(std::move(topo))
                     .architecture(spec)
                     .shard_sizes(sizes)
                     .build();
    const auto summary = fleet.run(5);
    double pairs = 0, saving = 0;
    for (const auto& r : summary.rounds) {
      pairs += static_cast<double>(r.num_pairs);
      saving += 1.0 - r.round_seconds / r.unbalanced_seconds;
    }
    std::printf("%-28s %10.1f %8.1f %13.0f%%\n", t.label,
                summary.mean_round_seconds(), pairs / 5.0,
                100.0 * saving / 5.0);
  }
  std::printf("\nsparser graphs leave fewer pairing options, so savings "
              "shrink gracefully;\neven the ring keeps training (agents "
              "pair with ring neighbours or run solo).\n");
  return 0;
}
